// Tests for the open-loop arrival generator: determinism per
// (seed, config), stream independence across split labels, process shape
// sanity, the job-mix sampler, and trace CSV round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "mrs/workload/arrivals.hpp"

namespace mrs::workload {
namespace {

ArrivalConfig poisson_config(double rate_per_hour = 360.0,
                             Seconds duration = 3600.0) {
  ArrivalConfig cfg;
  cfg.process = ArrivalProcess::kPoisson;
  cfg.rate_per_hour = rate_per_hour;
  cfg.duration = duration;
  return cfg;
}

TEST(Arrivals, DeterministicPerSeedAndConfig) {
  const ArrivalConfig cfg = poisson_config();
  const auto a = generate_arrivals(cfg, Rng(7).split("arrivals"));
  const auto b = generate_arrivals(cfg, Rng(7).split("arrivals"));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

TEST(Arrivals, SeedChangesSequence) {
  const ArrivalConfig cfg = poisson_config();
  const auto a = generate_arrivals(cfg, Rng(1));
  const auto b = generate_arrivals(cfg, Rng(2));
  bool any_diff = a.size() != b.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = !(a[i] == b[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Arrivals, DifferentStreamLabelsUncorrelated) {
  // Two children of the same root with different labels must produce
  // unrelated streams: no shared arrival instants at all.
  const ArrivalConfig cfg = poisson_config();
  const Rng root(42);
  const auto a = generate_arrivals(cfg, root.split("stream-a"));
  const auto b = generate_arrivals(cfg, root.split("stream-b"));
  std::size_t shared = 0;
  std::size_t j = 0;
  for (const auto& arr : a) {
    while (j < b.size() && b[j].time < arr.time) ++j;
    if (j < b.size() && b[j].time == arr.time) ++shared;
  }
  EXPECT_EQ(shared, 0u);
}

TEST(Arrivals, PoissonCountMatchesRate) {
  // 360 jobs/h over 1 h: count ~ Poisson(360), sd ~ 19. A +/-5 sd band
  // keeps the test deterministic-robust across seed choices.
  const auto arrivals = generate_arrivals(poisson_config(), Rng(42));
  EXPECT_GT(arrivals.size(), 265u);
  EXPECT_LT(arrivals.size(), 455u);
}

TEST(Arrivals, SortedWithinHorizonAndUniquelyNamed) {
  const auto arrivals = generate_arrivals(poisson_config(), Rng(3));
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i].time, 0.0);
    EXPECT_LT(arrivals[i].time, 3600.0);
    EXPECT_GE(arrivals[i].job.map_count, 1u);
    EXPECT_GE(arrivals[i].job.reduce_count, 1u);
    if (i > 0) {
      EXPECT_GE(arrivals[i].time, arrivals[i - 1].time);
      EXPECT_NE(arrivals[i].job.name, arrivals[i - 1].job.name);
    }
  }
}

TEST(Arrivals, MixWeightsSelectKind) {
  ArrivalConfig cfg = poisson_config();
  cfg.mix.wordcount_weight = 0.0;
  cfg.mix.terasort_weight = 0.0;
  cfg.mix.grep_weight = 1.0;
  const auto arrivals = generate_arrivals(cfg, Rng(5));
  ASSERT_FALSE(arrivals.empty());
  for (const auto& a : arrivals) {
    EXPECT_EQ(a.job.kind, mapreduce::JobKind::kGrep);
  }
}

TEST(Arrivals, SizeSkewFavorsSmallJobs) {
  ArrivalConfig skewed = poisson_config();
  skewed.mix.size_skew = 3.0;
  ArrivalConfig uniform = poisson_config();
  uniform.mix.size_skew = 0.0;
  auto mean_maps = [](const std::vector<Arrival>& as) {
    double sum = 0.0;
    for (const auto& a : as) sum += static_cast<double>(a.job.map_count);
    return sum / static_cast<double>(as.size());
  };
  const auto s = generate_arrivals(skewed, Rng(11));
  const auto u = generate_arrivals(uniform, Rng(11));
  EXPECT_LT(mean_maps(s), mean_maps(u));
}

TEST(Arrivals, MapCountScaleShrinksJobs) {
  ArrivalConfig cfg = poisson_config();
  cfg.mix.map_count_scale = 0.01;  // even the 930-map job shrinks to ~9
  const auto arrivals = generate_arrivals(cfg, Rng(9));
  for (const auto& a : arrivals) {
    EXPECT_LE(a.job.map_count, 10u);
    EXPECT_GE(a.job.map_count, 1u);  // floored, never zero
  }
}

TEST(Arrivals, SizeJitterVariesSizesAroundCatalog) {
  ArrivalConfig cfg = poisson_config();
  cfg.mix.size_jitter_sigma = 0.5;
  cfg.mix.size_skew = 0.0;
  const auto arrivals = generate_arrivals(cfg, Rng(13));
  // Catalog map counts are fixed values; with jitter we must see counts
  // that are not in the catalog (e.g. odd perturbations of 88, 160, ...).
  bool any_off_catalog = false;
  for (const auto& a : arrivals) {
    bool in_catalog = false;
    for (const auto& d : table2_catalog()) {
      if (a.job.map_count == d.map_count) in_catalog = true;
    }
    if (!in_catalog) any_off_catalog = true;
  }
  EXPECT_TRUE(any_off_catalog);
}

TEST(Arrivals, MmppDeterministicAndBurstierThanPoisson) {
  ArrivalConfig cfg = poisson_config(240.0, 4.0 * 3600.0);
  cfg.process = ArrivalProcess::kMmpp;
  cfg.mmpp.burst_rate_multiplier = 6.0;
  cfg.mmpp.mean_calm_sojourn = 400.0;
  cfg.mmpp.mean_burst_sojourn = 200.0;
  const auto a = generate_arrivals(cfg, Rng(21));
  const auto b = generate_arrivals(cfg, Rng(21));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);

  // Index of dispersion of per-minute counts: ~1 for Poisson, > 1 for a
  // bursty MMPP. Computed on fixed seeds, so the comparison is stable.
  auto dispersion = [&](const std::vector<Arrival>& as) {
    const std::size_t bins = static_cast<std::size_t>(cfg.duration / 60.0);
    std::vector<double> counts(bins, 0.0);
    for (const auto& arr : as) {
      counts[std::min(bins - 1, static_cast<std::size_t>(arr.time / 60.0))]
          += 1.0;
    }
    double mean = 0.0;
    for (double c : counts) mean += c;
    mean /= static_cast<double>(bins);
    double var = 0.0;
    for (double c : counts) var += (c - mean) * (c - mean);
    var /= static_cast<double>(bins - 1);
    return var / mean;
  };
  ArrivalConfig pcfg = cfg;
  pcfg.process = ArrivalProcess::kPoisson;
  const auto p = generate_arrivals(pcfg, Rng(21));
  EXPECT_GT(dispersion(a), 1.5 * dispersion(p));
}

TEST(Arrivals, TraceRoundTripsThroughCsv) {
  ArrivalConfig cfg = poisson_config(120.0, 1800.0);
  cfg.mix.size_jitter_sigma = 0.3;
  const auto generated = generate_arrivals(cfg, Rng(17));
  const std::string path =
      (std::filesystem::temp_directory_path() / "pnats_arrivals_rt.csv")
          .string();
  save_arrival_trace(path, generated);
  const auto loaded = load_arrival_trace(path);
  ASSERT_EQ(loaded.size(), generated.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time, generated[i].time);
    EXPECT_EQ(loaded[i].job.name, generated[i].job.name);
    EXPECT_EQ(loaded[i].job.kind, generated[i].job.kind);
    EXPECT_DOUBLE_EQ(loaded[i].job.nominal_gb, generated[i].job.nominal_gb);
    EXPECT_EQ(loaded[i].job.map_count, generated[i].job.map_count);
    EXPECT_EQ(loaded[i].job.reduce_count, generated[i].job.reduce_count);
  }
  // Second round trip is exact (load is a fixed point of save+load).
  save_arrival_trace(path, loaded);
  const auto again = load_arrival_trace(path);
  ASSERT_EQ(again.size(), loaded.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_TRUE(again[i] == loaded[i]);
  }
  std::filesystem::remove(path);
}

TEST(Arrivals, TraceProcessDropsBeyondHorizon) {
  const auto generated = generate_arrivals(poisson_config(), Rng(19));
  const std::string path =
      (std::filesystem::temp_directory_path() / "pnats_arrivals_hz.csv")
          .string();
  save_arrival_trace(path, generated);
  ArrivalConfig replay;
  replay.process = ArrivalProcess::kTrace;
  replay.trace_path = path;
  replay.duration = 600.0;
  const auto loaded = generate_arrivals(replay, Rng(0));
  ASSERT_FALSE(loaded.empty());
  for (const auto& a : loaded) EXPECT_LT(a.time, 600.0);
  EXPECT_LT(loaded.size(), generated.size());
  std::filesystem::remove(path);
}

TEST(Arrivals, MalformedTraceThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pnats_arrivals_bad.csv")
          .string();
  {
    std::ofstream out(path);
    out << "time,name,kind,maps,reduces\n";
    out << "12.5,job_a,Wordcount,4\n";  // missing field
  }
  EXPECT_THROW(load_arrival_trace(path), std::runtime_error);
  EXPECT_THROW(load_arrival_trace("/nonexistent/arrivals.csv"),
               std::runtime_error);
  std::filesystem::remove(path);
}

ArrivalConfig two_tenant_config(double bursty_rate = 240.0) {
  ArrivalConfig cfg;
  cfg.duration = 1800.0;
  TenantConfig steady;
  steady.name = "steady";
  steady.rate_per_hour = 240.0;
  steady.weight = 4.0;
  TenantConfig bursty;
  bursty.name = "bursty";
  bursty.process = ArrivalProcess::kMmpp;
  bursty.rate_per_hour = bursty_rate;
  bursty.weight = 1.0;
  cfg.tenants = {steady, bursty};
  return cfg;
}

TEST(Arrivals, MultiTenantTagsAndWeightsEveryJob) {
  const auto arrivals = generate_arrivals(two_tenant_config(), Rng(31));
  ASSERT_FALSE(arrivals.empty());
  std::size_t seen[2] = {0, 0};
  Seconds prev = 0.0;
  for (const auto& a : arrivals) {
    EXPECT_GE(a.time, prev);
    prev = a.time;
    EXPECT_LT(a.time, 1800.0);
    ASSERT_LT(a.job.tenant.value(), 2u);
    ++seen[a.job.tenant.value()];
    const bool t0 = a.job.tenant == TenantId(0);
    EXPECT_DOUBLE_EQ(a.job.weight, t0 ? 4.0 : 1.0);
    EXPECT_NE(a.job.name.find(t0 ? "@t0" : "@t1"), std::string::npos);
  }
  EXPECT_GT(seen[0], 0u);
  EXPECT_GT(seen[1], 0u);
}

TEST(Arrivals, MultiTenantDeterministicPerSeed) {
  const ArrivalConfig cfg = two_tenant_config();
  const auto a = generate_arrivals(cfg, Rng(7).split("arrivals"));
  const auto b = generate_arrivals(cfg, Rng(7).split("arrivals"));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

TEST(Arrivals, SteadyTenantStreamInvariantToNeighbourRate) {
  // Each tenant draws from its own split streams, so sweeping the bursty
  // neighbour's rate must not move a single steady-tenant arrival (the
  // isolation bench's control variable). Names carry the merged global
  // sequence number, so compare times and job shapes.
  auto tenant0 = [](const std::vector<Arrival>& all) {
    std::vector<Arrival> out;
    for (const auto& a : all) {
      if (a.job.tenant == TenantId(0)) out.push_back(a);
    }
    return out;
  };
  const auto calm = tenant0(generate_arrivals(two_tenant_config(240.0),
                                              Rng(13)));
  const auto loud = tenant0(generate_arrivals(two_tenant_config(960.0),
                                              Rng(13)));
  ASSERT_EQ(calm.size(), loud.size());
  ASSERT_FALSE(calm.empty());
  for (std::size_t i = 0; i < calm.size(); ++i) {
    EXPECT_DOUBLE_EQ(calm[i].time, loud[i].time);
    EXPECT_EQ(calm[i].job.kind, loud[i].job.kind);
    EXPECT_EQ(calm[i].job.map_count, loud[i].job.map_count);
    EXPECT_EQ(calm[i].job.reduce_count, loud[i].job.reduce_count);
  }
}

TEST(Arrivals, MultiTenantTraceRoundTripPreservesTenantAndWeight) {
  const auto generated = generate_arrivals(two_tenant_config(), Rng(37));
  const std::string path =
      (std::filesystem::temp_directory_path() / "pnats_arrivals_mt.csv")
          .string();
  save_arrival_trace(path, generated);
  const auto loaded = load_arrival_trace(path);
  ASSERT_EQ(loaded.size(), generated.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time, generated[i].time);
    EXPECT_EQ(loaded[i].job.name, generated[i].job.name);
    EXPECT_DOUBLE_EQ(loaded[i].job.nominal_gb, generated[i].job.nominal_gb);
    EXPECT_EQ(loaded[i].job.tenant, generated[i].job.tenant);
    EXPECT_DOUBLE_EQ(loaded[i].job.weight, generated[i].job.weight);
  }
  // Load is a fixed point of save+load, tenant tags included.
  save_arrival_trace(path, loaded);
  const auto again = load_arrival_trace(path);
  ASSERT_EQ(again.size(), loaded.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_TRUE(again[i] == loaded[i]);
  }
  std::filesystem::remove(path);
}

TEST(Arrivals, MultiTenantRejectsInvalidTenantConfig) {
  ArrivalConfig bad_rate = two_tenant_config();
  bad_rate.tenants[1].rate_per_hour = 0.0;
  EXPECT_DEATH((void)generate_arrivals(bad_rate, Rng(1)), "rate");
  ArrivalConfig bad_weight = two_tenant_config();
  bad_weight.tenants[0].weight = -1.0;
  EXPECT_DEATH((void)generate_arrivals(bad_weight, Rng(1)), "weight");
  ArrivalConfig bad_process = two_tenant_config();
  bad_process.tenants[0].process = ArrivalProcess::kTrace;
  EXPECT_DEATH((void)generate_arrivals(bad_process, Rng(1)), "");
}

TEST(Arrivals, LegacyFiveColumnTraceLoadsWithDefaults) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pnats_arrivals_l5.csv")
          .string();
  {
    std::ofstream out(path);
    out << "time,name,kind,maps,reduces\n";
    out << "1.5,old_job,Wordcount,8,4\n";
  }
  const auto loaded = load_arrival_trace(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].time, 1.5);
  EXPECT_EQ(loaded[0].job.name, "old_job");
  EXPECT_DOUBLE_EQ(loaded[0].job.nominal_gb, 0.0);
  EXPECT_EQ(loaded[0].job.map_count, 8u);
  EXPECT_EQ(loaded[0].job.reduce_count, 4u);
  EXPECT_EQ(loaded[0].job.tenant, TenantId(0));
  EXPECT_DOUBLE_EQ(loaded[0].job.weight, 1.0);
  std::filesystem::remove(path);
}

TEST(Arrivals, LegacySevenColumnTraceLoadsTenantAndWeight) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pnats_arrivals_l7.csv")
          .string();
  {
    std::ofstream out(path);
    out << "time,name,kind,maps,reduces,tenant,weight\n";
    out << "2.25,old_mt,Grep,6,3,4,2.5\n";
  }
  const auto loaded = load_arrival_trace(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].job.nominal_gb, 0.0);
  EXPECT_EQ(loaded[0].job.tenant, TenantId(4));
  EXPECT_DOUBLE_EQ(loaded[0].job.weight, 2.5);
  std::filesystem::remove(path);
}

TEST(Arrivals, TraceRoundTripsQuotedNames) {
  // Commas, quotes and newlines inside job names must survive save->load
  // (the writer escapes, the record-level reader inverts it).
  Arrival a;
  a.time = 3.0;
  a.job.name = "weird, \"name\"\nwith newline";
  a.job.kind = mapreduce::JobKind::kTerasort;
  a.job.nominal_gb = 12.5;
  a.job.map_count = 5;
  a.job.reduce_count = 2;
  a.job.tenant = TenantId(1);
  a.job.weight = 3.0;
  a.job.job_id = "1";
  const std::string path =
      (std::filesystem::temp_directory_path() / "pnats_arrivals_q.csv")
          .string();
  save_arrival_trace(path, std::vector<Arrival>{a});
  const auto loaded = load_arrival_trace(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded[0] == a);
  std::filesystem::remove(path);
}

TEST(Arrivals, MalformedNumericReportsPathAndLine) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pnats_arrivals_num.csv")
          .string();
  {
    std::ofstream out(path);
    out << "time,name,kind,maps,reduces\n";
    out << "1.0,fine,Grep,4,2\n";
    out << "2.0,broken,Grep,4x,2\n";  // trailing junk in maps (line 3)
  }
  try {
    (void)load_arrival_trace(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path + ":3"), std::string::npos) << what;
    EXPECT_NE(what.find("maps"), std::string::npos) << what;
  }
  {
    std::ofstream out(path);
    out << "time,name,kind,maps,reduces\n";
    out << "oops,bad_time,Grep,4,2\n";
  }
  try {
    (void)load_arrival_trace(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path + ":2"), std::string::npos) << what;
    EXPECT_NE(what.find("time"), std::string::npos) << what;
  }
  std::filesystem::remove(path);
}

TEST(Arrivals, TraceHorizonCutRenumbersJobIds) {
  // Ids are assigned on load (sorted order); the duration filter then
  // drops rows from anywhere in that order, so generate_arrivals must
  // renumber — ids stay contiguous 1..n for the engine and pairing.
  const std::string path =
      (std::filesystem::temp_directory_path() / "pnats_arrivals_cut.csv")
          .string();
  {
    std::ofstream out(path);
    out << "time,name,kind,gb,maps,reduces,tenant,weight\n";
    out << "700,late_a,Grep,1,4,2,0,1\n";
    out << "10,early_a,Terasort,1,8,4,0,1\n";
    out << "900,late_b,Wordcount,1,4,2,0,1\n";
    out << "50,early_b,Grep,1,4,2,0,1\n";
  }
  ArrivalConfig replay;
  replay.process = ArrivalProcess::kTrace;
  replay.trace_path = path;
  replay.duration = 600.0;
  const auto kept = generate_arrivals(replay, Rng(0));
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].job.name, "early_a");
  EXPECT_EQ(kept[0].job.job_id, "1");
  EXPECT_EQ(kept[1].job.name, "early_b");
  EXPECT_EQ(kept[1].job.job_id, "2");
  std::filesystem::remove(path);
}

TEST(Arrivals, TraceUnsortedInputIsSortedOnLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pnats_arrivals_srt.csv")
          .string();
  {
    std::ofstream out(path);
    out << "time,name,kind,maps,reduces\n";
    out << "300,late,Grep,4,2\n";
    out << "10,early,Terasort,8,4\n";
  }
  const auto loaded = load_arrival_trace(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].job.name, "early");
  EXPECT_EQ(loaded[1].job.name, "late");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mrs::workload
