// Tests for the k-ary fat-tree builder and ECMP route spreading.
#include <gtest/gtest.h>

#include <set>

#include "mrs/net/flow.hpp"
#include "mrs/net/topology.hpp"

namespace mrs::net {
namespace {

TEST(FatTree, K4Shape) {
  const Topology t = make_fat_tree({.k = 4});
  // k^3/4 hosts, (k/2)^2 cores + k pods x (k/2 agg + k/2 edge) switches.
  EXPECT_EQ(t.host_count(), 16u);
  EXPECT_EQ(t.switch_count(), 4u + 4u * 4u);
  EXPECT_EQ(t.rack_count(), 8u);
  // Links: host (16) + edge-agg (k pods x (k/2)^2 = 16) + agg-core (16).
  EXPECT_EQ(t.link_count(), 48u);
}

TEST(FatTree, HopDistanceClasses) {
  const Topology t = make_fat_tree({.k = 4});
  // Same edge switch: 2 hops; same pod, different edge: 4; cross pod: 6.
  EXPECT_EQ(t.hops(NodeId(0), NodeId(0)), 0u);
  EXPECT_EQ(t.hops(NodeId(0), NodeId(1)), 2u);   // same edge switch
  EXPECT_EQ(t.hops(NodeId(0), NodeId(2)), 4u);   // same pod
  EXPECT_EQ(t.hops(NodeId(0), NodeId(4)), 6u);   // other pod
}

TEST(FatTree, RackAssignmentPerEdgeSwitch) {
  const Topology t = make_fat_tree({.k = 4});
  EXPECT_TRUE(t.same_rack(NodeId(0), NodeId(1)));
  EXPECT_FALSE(t.same_rack(NodeId(0), NodeId(2)));
}

TEST(FatTree, EcmpSpreadsAcrossCores) {
  const Topology t = make_fat_tree({.k = 4});
  // Collect the core-adjacent links used by all cross-pod pairs from pod 0
  // to pod 1; ECMP must use more than one of the 4 core switches.
  std::set<std::size_t> core_links_used;
  for (std::size_t s = 0; s < 4; ++s) {        // pod 0 hosts
    for (std::size_t d = 4; d < 8; ++d) {      // pod 1 hosts
      const auto& path = t.path(NodeId(s), NodeId(d));
      ASSERT_EQ(path.size(), 6u);
      // Middle two links touch the core.
      core_links_used.insert(path[2].link.value());
      core_links_used.insert(path[3].link.value());
    }
  }
  EXPECT_GT(core_links_used.size(), 2u);
}

TEST(FatTree, RoutesAreStablePerPair) {
  const Topology a = make_fat_tree({.k = 4});
  const Topology b = make_fat_tree({.k = 4});
  for (std::size_t s = 0; s < a.host_count(); ++s) {
    for (std::size_t d = 0; d < a.host_count(); ++d) {
      const auto& pa = a.path(NodeId(s), NodeId(d));
      const auto& pb = b.path(NodeId(s), NodeId(d));
      ASSERT_EQ(pa.size(), pb.size());
      for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].link, pb[i].link);
        EXPECT_EQ(pa[i].reverse, pb[i].reverse);
      }
    }
  }
}

TEST(FatTree, PathsAreContiguous) {
  const Topology t = make_fat_tree({.k = 4});
  for (std::size_t s = 0; s < t.host_count(); ++s) {
    for (std::size_t d = 0; d < t.host_count(); ++d) {
      if (s == d) continue;
      std::size_t cur = t.host_vertex(NodeId(s));
      for (const DirectedLink& dl : t.path(NodeId(s), NodeId(d))) {
        const Link& l = t.link(dl.link);
        const std::size_t from = dl.reverse ? l.b : l.a;
        const std::size_t to = dl.reverse ? l.a : l.b;
        ASSERT_EQ(from, cur);
        cur = to;
      }
      EXPECT_EQ(cur, t.host_vertex(NodeId(d)));
    }
  }
}

TEST(FatTree, BisectionBandwidthExceedsSingleTree) {
  // 8 concurrent cross-pod flows on a k=4 fat-tree should sustain more
  // aggregate rate than on a 2-rack tree with a single shared uplink of
  // the same link speed.
  constexpr double kGb = 1e9 / 8.0;
  const Topology ft = make_fat_tree({.k = 4, .link = units::Gbps(1)});
  FlowModel fm_ft(&ft);
  double ft_rate = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const FlowId f =
        fm_ft.start(NodeId(i), NodeId(4 + i), 100.0 * kGb, 0.0);
    ft_rate += fm_ft.info(f).rate;  // re-read below after all start
  }
  ft_rate = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    ft_rate += fm_ft.info(FlowId(i)).rate;
  }

  TreeTopologyConfig tree;
  tree.racks = 2;
  tree.hosts_per_rack = 8;
  tree.host_link = units::Gbps(1);
  tree.uplink = units::Gbps(1);  // same technology, no fat-tree multipath
  const Topology tt = make_multi_rack_tree(tree);
  FlowModel fm_tt(&tt);
  for (std::size_t i = 0; i < 4; ++i) {
    fm_tt.start(NodeId(i), NodeId(8 + i), 100.0 * kGb, 0.0);
  }
  double tt_rate = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    tt_rate += fm_tt.info(FlowId(i)).rate;
  }
  EXPECT_GT(ft_rate, tt_rate * 1.5);
}

TEST(FatTree, K6Shape) {
  const Topology t = make_fat_tree({.k = 6});
  EXPECT_EQ(t.host_count(), 54u);  // k^3/4
  EXPECT_EQ(t.rack_count(), 18u);
}

TEST(FatTree, RejectsOddK) {
  EXPECT_DEATH(make_fat_tree({.k = 3}), "k");
}

}  // namespace
}  // namespace mrs::net
