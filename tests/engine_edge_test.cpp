// Edge-case and job-policy tests: degenerate cluster/job shapes,
// zero-output jobs, weighted-fair ordering, long-running robustness.
#include <gtest/gtest.h>

#include "mrs/core/pna_scheduler.hpp"
#include "mrs/mapreduce/job_policy.hpp"
#include "mrs/sched/fifo.hpp"
#include "test_harness.hpp"

namespace mrs::mapreduce {
namespace {

using mrs::testing::MiniCluster;

TEST(EngineEdge, SingleNodeCluster) {
  MiniCluster h(1);
  JobRun& job = h.submit_job(5, 2, 32.0 * units::kMiB, 1.0,
                             /*replication=*/1);
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_TRUE(job.complete());
  // Everything node-local and zero network bytes.
  for (const auto& t : h.engine.task_records()) {
    EXPECT_DOUBLE_EQ(t.network_bytes, 0.0);
  }
}

TEST(EngineEdge, OneMapOneReduce) {
  MiniCluster h(3);
  JobRun& job = h.submit_job(1, 1);
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_TRUE(job.complete());
  EXPECT_EQ(h.engine.task_records().size(), 2u);
}

TEST(EngineEdge, ZeroSelectivityJob) {
  // A map-only-style job: maps emit nothing; reduces must still complete
  // (instantly after all maps finish).
  MiniCluster h(3);
  JobRun& job = h.submit_job(6, 2, 32.0 * units::kMiB, /*selectivity=*/0.0);
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_TRUE(job.complete());
  for (std::size_t f = 0; f < job.reduce_count(); ++f) {
    EXPECT_DOUBLE_EQ(job.reduce_state(f).bytes_fetched, 0.0);
    EXPECT_EQ(job.reduce_state(f).fetched_maps, job.map_count());
  }
}

TEST(EngineEdge, MoreReducesThanSlots) {
  // 2 nodes x 2 reduce slots = 4 slots, 12 reduces: waves must drain.
  MiniCluster h(2);
  JobRun& job = h.submit_job(4, 12);
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_TRUE(job.complete());
}

TEST(EngineEdge, ManySmallJobs) {
  MiniCluster h(4);
  for (int i = 0; i < 12; ++i) h.submit_job(2, 1);
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_EQ(h.engine.job_records().size(), 12u);
}

TEST(EngineEdge, PnaOnSingleNode) {
  MiniCluster h(1);
  JobRun& job = h.submit_job(4, 2, 32.0 * units::kMiB, 1.0, 1);
  core::PnaScheduler pna({}, Rng(1));
  h.run(pna);
  EXPECT_TRUE(job.complete());
}

TEST(EngineEdge, HugeStartupDelay) {
  MiniCluster h(3);
  JobSpec spec;
  spec.name = "slow-start";
  spec.reduce_count = 1;
  spec.task_startup = 60.0;
  spec.selectivity_jitter = 0.0;
  const BlockId b = h.store.add_block(
      32.0 * units::kMiB, h.placer.place(2, dfs::PlacementPolicy::kRandom));
  spec.map_tasks.push_back({b, 32.0 * units::kMiB});
  JobRun& job = h.engine.submit(std::move(spec), Rng(2));
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_TRUE(job.complete());
  EXPECT_GT(job.finish_time, 120.0);  // two startups in sequence
}

TEST(WeightedFair, HeavierJobGetsMoreConcurrency) {
  MiniCluster h(4);
  JobRun& heavy = h.submit_job(40, 2);
  JobRun& light = h.submit_job(40, 2);
  const_cast<JobSpec&>(heavy.spec()).weight = 4.0;
  const_cast<JobSpec&>(light.spec()).weight = 1.0;

  // Sample concurrency while both have pending maps, under a scheduler
  // that follows weighted-fair ordering.
  struct WeightedFifo final : TaskScheduler {
    double heavy_running_sum = 0.0;
    double light_running_sum = 0.0;
    int samples = 0;
    JobRun* heavy_job = nullptr;
    JobRun* light_job = nullptr;
    const char* name() const override { return "wfifo"; }
    void on_heartbeat(Engine& e, NodeId node) override {
      if (heavy_job->maps_unassigned() > 0 &&
          light_job->maps_unassigned() > 0) {
        heavy_running_sum += double(heavy_job->maps_running());
        light_running_sum += double(light_job->maps_running());
        ++samples;
      }
      while (e.map_budget_left() > 0 &&
             e.cluster().node(node).free_map_slots() > 0) {
        auto jobs = jobs_for_maps(e, JobOrder::kWeightedFair);
        if (jobs.empty()) break;
        const std::size_t j = jobs.front()->next_any_map();
        if (j == jobs.front()->map_count()) break;
        e.assign_map(*jobs.front(), j, node);
      }
      auto rjobs = jobs_for_reduces(e, JobOrder::kWeightedFair);
      if (!rjobs.empty() && e.reduce_budget_left() > 0 &&
          e.cluster().node(node).free_reduce_slots() > 0) {
        const auto un = rjobs.front()->unassigned_reduces();
        if (!un.empty()) e.assign_reduce(*rjobs.front(), un.front(), node);
      }
    }
  } sched;
  sched.heavy_job = &heavy;
  sched.light_job = &light;
  h.run(sched);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  ASSERT_GT(sched.samples, 10);
  // The weight-4 job should run clearly more concurrent maps on average.
  EXPECT_GT(sched.heavy_running_sum, sched.light_running_sum * 1.8);
}

TEST(WeightedFair, EqualWeightsMatchFair) {
  MiniCluster h(3);
  JobRun& a = h.submit_job(6, 1);
  JobRun& b = h.submit_job(6, 1);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  h.sim.run(0.1);
  a.note_map_assigned();
  const auto fair = jobs_for_maps(h.engine, JobOrder::kFair);
  const auto weighted = jobs_for_maps(h.engine, JobOrder::kWeightedFair);
  ASSERT_EQ(fair.size(), 2u);
  EXPECT_EQ(fair.front(), weighted.front());
  EXPECT_EQ(fair.front(), &b);
}

}  // namespace
}  // namespace mrs::mapreduce
