// Unit tests for the deterministic splittable RNG (mrs/common/rng.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "mrs/common/ids.hpp"
#include "mrs/common/rng.hpp"

namespace mrs {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
  const Rng root(77);
  Rng a = root.split("alpha");
  Rng b = root.split("alpha");
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Rng, SplitLabelsAreIndependent) {
  const Rng root(77);
  Rng a = root.split("alpha");
  Rng b = root.split("beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitDoesNotPerturbParent) {
  Rng a(5);
  Rng b(5);
  (void)a.split("child");  // splitting must not consume parent state
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Rng, Uniform01InRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values appear
}

TEST(Rng, IndexCoversRange) {
  Rng r(4);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[r.index(5)];
  for (int c : counts) EXPECT_GT(c, 700);  // near-uniform
}

TEST(Rng, BernoulliExtremes) {
  Rng r(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(0.0));
  }
  // Out-of-range probabilities clamp instead of misbehaving.
  EXPECT_TRUE(r.bernoulli(2.0));
  EXPECT_FALSE(r.bernoulli(-1.0));
}

TEST(Rng, BernoulliFrequency) {
  Rng r(8);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(10);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, NormalZeroStddevIsMean) {
  Rng r(10);
  EXPECT_DOUBLE_EQ(r.normal(3.25, 0.0), 3.25);
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, LognormalPositive) {
  Rng r(12);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(r.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, ZipfUniformWhenExponentZero) {
  Rng r(13);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[r.zipf(4, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng r(14);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[r.zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[9] * 3);
  // Monotone-ish decay over a wide gap.
  EXPECT_GT(counts[0] + counts[1], counts[8] + counts[9]);
}

TEST(Rng, ZipfSingleElement) {
  Rng r(15);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.zipf(1, 2.0), 0u);
}

TEST(SplitMix, AvalanchesBits) {
  // Neighbouring inputs should produce wildly different outputs.
  const auto a = splitmix64(1);
  const auto b = splitmix64(2);
  int differing = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if (((a >> bit) & 1) != ((b >> bit) & 1)) ++differing;
  }
  EXPECT_GT(differing, 20);
}

TEST(HashLabel, DistinctLabelsDistinctHashes) {
  EXPECT_NE(hash_label("map"), hash_label("reduce"));
  EXPECT_NE(hash_label("a"), hash_label("b"));
  EXPECT_EQ(hash_label("x"), hash_label("x"));
}

TEST(Ids, StrongTypesCompareAndHash) {
  const NodeId a(3), b(3), c(4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(NodeId::invalid().valid());
  EXPECT_EQ(std::hash<NodeId>{}(a), std::hash<NodeId>{}(b));
}

}  // namespace
}  // namespace mrs
