// Tests for the open-loop streaming runner: drain, determinism of the
// steady-state metrics, arrival pairing across schedulers, and warmup
// windowing.
#include <gtest/gtest.h>

#include <map>

#include "mrs/driver/stream_experiment.hpp"

namespace mrs::driver {
namespace {

StreamConfig tiny_stream(SchedulerKind kind, std::uint64_t seed = 42) {
  StreamConfig cfg;
  // paper_config needs a non-empty batch; the stream overwrites it.
  cfg.base = paper_config(
      {{"d", "dummy", mapreduce::JobKind::kWordcount, 1, 4, 2}}, kind, seed);
  cfg.base.nodes = 8;
  cfg.arrivals.process = workload::ArrivalProcess::kPoisson;
  cfg.arrivals.rate_per_hour = 240.0;
  cfg.arrivals.duration = 600.0;
  cfg.arrivals.mix.map_count_scale = 0.02;  // shrink catalog jobs ~50x
  cfg.arrivals.mix.reduce_count_scale = 0.02;
  cfg.warmup = 100.0;
  return cfg;
}

TEST(StreamExperiment, DrainsAndReportsSteadyState) {
  const auto r = run_stream_experiment(tiny_stream(SchedulerKind::kPna));
  EXPECT_TRUE(r.run.completed);
  ASSERT_FALSE(r.arrivals.empty());
  EXPECT_EQ(r.run.job_records.size(), r.arrivals.size());
  EXPECT_GT(r.steady.jobs_submitted, 0u);
  EXPECT_GT(r.steady.throughput_jobs_per_hour, 0.0);
  EXPECT_GT(r.steady.response_time.p50, 0.0);
  EXPECT_LE(r.steady.response_time.p50, r.steady.response_time.p95);
  EXPECT_LE(r.steady.response_time.p95, r.steady.response_time.p99);
  EXPECT_GT(r.steady.map_slot_utilization, 0.0);
  EXPECT_LE(r.steady.map_slot_utilization, 1.0);
  EXPECT_DOUBLE_EQ(r.steady.window.begin, 100.0);
  EXPECT_DOUBLE_EQ(r.steady.window.end, 600.0);
}

TEST(StreamExperiment, IdenticalSeedsIdenticalSteadyMetrics) {
  // The determinism contract extends to the streaming subsystem: same
  // (seed, config) reproduces the steady-state metrics exactly.
  const auto a = run_stream_experiment(tiny_stream(SchedulerKind::kPna, 9));
  const auto b = run_stream_experiment(tiny_stream(SchedulerKind::kPna, 9));
  EXPECT_DOUBLE_EQ(a.steady.throughput_jobs_per_hour,
                   b.steady.throughput_jobs_per_hour);
  EXPECT_DOUBLE_EQ(a.steady.offered_jobs_per_hour,
                   b.steady.offered_jobs_per_hour);
  EXPECT_DOUBLE_EQ(a.steady.response_time.p50, b.steady.response_time.p50);
  EXPECT_DOUBLE_EQ(a.steady.response_time.p99, b.steady.response_time.p99);
  EXPECT_DOUBLE_EQ(a.steady.queueing_delay.mean, b.steady.queueing_delay.mean);
  EXPECT_DOUBLE_EQ(a.steady.mean_jobs_in_system, b.steady.mean_jobs_in_system);
  EXPECT_DOUBLE_EQ(a.steady.map_slot_utilization,
                   b.steady.map_slot_utilization);
  EXPECT_DOUBLE_EQ(a.run.makespan, b.run.makespan);
  EXPECT_EQ(a.run.events_processed, b.run.events_processed);
}

TEST(StreamExperiment, SeedChangesStream) {
  const auto a = run_stream_experiment(tiny_stream(SchedulerKind::kPna, 1));
  const auto b = run_stream_experiment(tiny_stream(SchedulerKind::kPna, 2));
  EXPECT_NE(a.run.makespan, b.run.makespan);
}

TEST(StreamExperiment, ArrivalsPairedAcrossSchedulers) {
  // Runs differing only in the scheduler face byte-identical arrival
  // streams (the Fig. 5 pairing contract, streaming edition).
  const auto fair = tiny_stream(SchedulerKind::kFair, 5);
  const auto pna = tiny_stream(SchedulerKind::kPna, 5);
  const auto af = stream_arrivals(fair);
  const auto ap = stream_arrivals(pna);
  ASSERT_EQ(af.size(), ap.size());
  for (std::size_t i = 0; i < af.size(); ++i) EXPECT_TRUE(af[i] == ap[i]);

  const auto rf = run_stream_experiment(fair);
  const auto rp = run_stream_experiment(pna);
  ASSERT_EQ(rf.run.job_records.size(), rp.run.job_records.size());
  EXPECT_EQ(rf.steady.jobs_submitted, rp.steady.jobs_submitted);
  EXPECT_DOUBLE_EQ(rf.steady.offered_jobs_per_hour,
                   rp.steady.offered_jobs_per_hour);
  // Records are in completion order, which is scheduler-dependent; join
  // the two runs by the (unique) job name.
  std::map<std::string, const mapreduce::JobRecord*> by_name;
  for (const auto& j : rf.run.job_records) by_name[j.name] = &j;
  for (const auto& j : rp.run.job_records) {
    const auto it = by_name.find(j.name);
    ASSERT_NE(it, by_name.end()) << j.name;
    EXPECT_DOUBLE_EQ(j.submit_time, it->second->submit_time);
    EXPECT_DOUBLE_EQ(j.input_bytes, it->second->input_bytes);
  }
}

TEST(StreamExperiment, WarmupJobsExcludedFromWindow) {
  const auto cfg = tiny_stream(SchedulerKind::kFifo, 3);
  const auto r = run_stream_experiment(cfg);
  std::size_t warmup_arrivals = 0;
  for (const auto& a : r.arrivals) {
    if (a.time < cfg.warmup) ++warmup_arrivals;
  }
  ASSERT_GT(warmup_arrivals, 0u);  // the seed produces early arrivals
  EXPECT_EQ(r.steady.jobs_submitted,
            r.arrivals.size() - warmup_arrivals);
}

TEST(StreamExperiment, SubmitTimesFollowArrivals) {
  const auto r = run_stream_experiment(tiny_stream(SchedulerKind::kPna, 8));
  // Job records are emitted in completion order; match them back to the
  // arrival sequence by name.
  for (const auto& j : r.run.job_records) {
    bool found = false;
    for (const auto& a : r.arrivals) {
      if (a.job.name == j.name) {
        EXPECT_DOUBLE_EQ(j.submit_time, a.time);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << j.name;
  }
}

TEST(StreamExperiment, MmppStreamRuns) {
  StreamConfig cfg = tiny_stream(SchedulerKind::kPna, 4);
  cfg.arrivals.process = workload::ArrivalProcess::kMmpp;
  const auto r = run_stream_experiment(cfg);
  EXPECT_TRUE(r.run.completed);
  EXPECT_GT(r.steady.jobs_submitted, 0u);
}

}  // namespace
}  // namespace mrs::driver
