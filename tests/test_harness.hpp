// Shared test fixture: a self-contained small cluster around the engine.
#pragma once

#include <string>

#include "mrs/cluster/cluster.hpp"
#include "mrs/dfs/block_store.hpp"
#include "mrs/mapreduce/engine.hpp"
#include "mrs/net/distance.hpp"
#include "mrs/sim/network_service.hpp"
#include "mrs/sim/simulation.hpp"

namespace mrs::testing {

struct MiniCluster {
  explicit MiniCluster(std::size_t nodes,
                       cluster::NodeConfig node_cfg = {},
                       mapreduce::EngineConfig engine_cfg = {},
                       std::uint64_t seed = 7)
      : topo(net::make_single_rack(nodes, units::Gbps(1))),
        store(nodes),
        placer(&topo, Rng(seed)),
        clstr(&topo, node_cfg, Rng(seed + 1)),
        network(&sim, &topo),
        distance(topo),
        engine(&sim, &clstr, &store, &network, &distance, engine_cfg) {}

  mapreduce::JobRun& submit_job(std::size_t maps, std::size_t reduces,
                                Bytes block = 64.0 * units::kMiB,
                                double selectivity = 1.0,
                                std::size_t replication = 2) {
    mapreduce::JobSpec spec;
    spec.name = "job" + std::to_string(counter);
    spec.reduce_count = reduces;
    spec.map_selectivity = selectivity;
    spec.selectivity_jitter = 0.0;
    spec.map_rate = 32.0 * units::kMiB;
    spec.reduce_rate = 32.0 * units::kMiB;
    spec.task_startup = 0.5;
    for (std::size_t j = 0; j < maps; ++j) {
      const BlockId b = store.add_block(
          block,
          placer.place(replication, dfs::PlacementPolicy::kHdfsDefault));
      spec.map_tasks.push_back({b, block});
    }
    return engine.submit(std::move(spec), Rng(100 + counter++));
  }

  void run(mapreduce::TaskScheduler& sched, Seconds max_time = 1e6) {
    engine.set_scheduler(&sched);
    engine.start();
    sim.run(max_time);
  }

  sim::Simulation sim;
  net::Topology topo;
  dfs::BlockStore store;
  dfs::BlockPlacer placer;
  cluster::Cluster clstr;
  sim::NetworkService network;
  net::HopDistanceProvider distance;
  mapreduce::Engine engine;
  int counter = 0;
};

}  // namespace mrs::testing
