// Tests for the slot-based cluster model and the heartbeat service.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mrs/cluster/cluster.hpp"
#include "mrs/cluster/heartbeat.hpp"
#include "mrs/sim/simulation.hpp"

namespace mrs::cluster {
namespace {

TEST(Cluster, InitialSlots) {
  const auto topo = net::make_single_rack(5);
  NodeConfig cfg;
  cfg.map_slots = 4;
  cfg.reduce_slots = 2;
  Cluster c(&topo, cfg, Rng(1));
  EXPECT_EQ(c.node_count(), 5u);
  EXPECT_EQ(c.total_map_slots(), 20u);
  EXPECT_EQ(c.total_reduce_slots(), 10u);
  EXPECT_EQ(c.busy_map_slots(), 0u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(c.node(NodeId(i)).free_map_slots(), 4u);
    EXPECT_EQ(c.node(NodeId(i)).free_reduce_slots(), 2u);
  }
}

TEST(Cluster, OccupyRelease) {
  const auto topo = net::make_single_rack(2);
  Cluster c(&topo, NodeConfig{}, Rng(1));
  c.occupy_map_slot(NodeId(0));
  c.occupy_map_slot(NodeId(0));
  EXPECT_EQ(c.node(NodeId(0)).free_map_slots(), 2u);
  EXPECT_EQ(c.busy_map_slots(), 2u);
  c.release_map_slot(NodeId(0));
  EXPECT_EQ(c.node(NodeId(0)).free_map_slots(), 3u);
  c.occupy_reduce_slot(NodeId(1));
  EXPECT_EQ(c.busy_reduce_slots(), 1u);
  c.release_reduce_slot(NodeId(1));
  EXPECT_EQ(c.busy_reduce_slots(), 0u);
}

TEST(Cluster, FreeSlotLists) {
  const auto topo = net::make_single_rack(3);
  NodeConfig cfg;
  cfg.map_slots = 1;
  cfg.reduce_slots = 1;
  Cluster c(&topo, cfg, Rng(1));
  c.occupy_map_slot(NodeId(1));
  const auto maps = c.nodes_with_free_map_slots();
  EXPECT_EQ(maps, (std::vector<NodeId>{NodeId(0), NodeId(2)}));
  c.occupy_reduce_slot(NodeId(0));
  c.occupy_reduce_slot(NodeId(2));
  const auto reduces = c.nodes_with_free_reduce_slots();
  EXPECT_EQ(reduces, (std::vector<NodeId>{NodeId(1)}));
}

// The incremental free-slot index must match a naive scan after every
// kind of mutation: assignment (occupy), completion (release), task kill
// (release), node failure (drain) and recovery.
TEST(Cluster, FreeSlotIndexMatchesNaiveScan) {
  const auto topo = net::make_single_rack(6);
  NodeConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 1;
  Cluster fast(&topo, cfg, Rng(3));
  Cluster naive(&topo, cfg, Rng(3));
  naive.set_naive_free_scan(true);

  const auto check = [&] {
    EXPECT_EQ(fast.nodes_with_free_map_slots(),
              naive.nodes_with_free_map_slots());
    EXPECT_EQ(fast.nodes_with_free_reduce_slots(),
              naive.nodes_with_free_reduce_slots());
    EXPECT_EQ(fast.busy_map_slots(), naive.busy_map_slots());
    EXPECT_EQ(fast.busy_reduce_slots(), naive.busy_reduce_slots());
  };
  const auto both = [&](auto&& op) {
    op(fast);
    op(naive);
    check();
  };

  check();  // initial: everyone free
  // Fill node 1 completely (leaves the map set at the second occupy).
  both([](Cluster& c) { c.occupy_map_slot(NodeId(1)); });
  both([](Cluster& c) { c.occupy_map_slot(NodeId(1)); });
  both([](Cluster& c) { c.occupy_reduce_slot(NodeId(1)); });
  // Partial occupancy elsewhere (no membership change for maps).
  both([](Cluster& c) { c.occupy_map_slot(NodeId(4)); });
  both([](Cluster& c) { c.occupy_reduce_slot(NodeId(0)); });
  // Finish: node 1 re-enters both sets in sorted position.
  both([](Cluster& c) { c.release_map_slot(NodeId(1)); });
  both([](Cluster& c) { c.release_reduce_slot(NodeId(1)); });
  // Kill path: the engine releases the victim's slots, then drains the
  // node; a dead node must leave both sets even with zero busy slots.
  both([](Cluster& c) { c.release_map_slot(NodeId(4)); });
  both([](Cluster& c) { c.set_node_alive(NodeId(4), false); });
  both([](Cluster& c) { c.set_node_alive(NodeId(4), false); });  // no-op
  // Recovery restores membership.
  both([](Cluster& c) { c.set_node_alive(NodeId(4), true); });

  // Node 1 still holds one busy map slot but has one free again, so every
  // node is back in the map set.
  EXPECT_EQ(fast.nodes_with_free_map_slots().size(), 6u);
  EXPECT_EQ(fast.busy_map_slots(), 1u);
}

TEST(Cluster, FreeSlotVersionAndJournal) {
  const auto topo = net::make_single_rack(4);
  NodeConfig cfg;
  cfg.map_slots = 1;
  cfg.reduce_slots = 1;
  Cluster c(&topo, cfg, Rng(1));

  const std::uint64_t v0 = c.free_map_version();
  c.occupy_map_slot(NodeId(2));  // leaves the set
  c.occupy_map_slot(NodeId(0));  // leaves the set
  c.release_map_slot(NodeId(2));  // re-enters
  EXPECT_EQ(c.free_map_version(), v0 + 3);

  const auto toggles = c.free_map_toggles_since(v0);
  ASSERT_TRUE(toggles.has_value());
  ASSERT_EQ(toggles->size(), 3u);
  EXPECT_EQ((*toggles)[0].node, NodeId(2));
  EXPECT_FALSE((*toggles)[0].now_free);
  EXPECT_EQ((*toggles)[1].node, NodeId(0));
  EXPECT_FALSE((*toggles)[1].now_free);
  EXPECT_EQ((*toggles)[2].node, NodeId(2));
  EXPECT_TRUE((*toggles)[2].now_free);

  // A suffix query sees only the newer toggles; a current query is empty.
  const auto tail = c.free_map_toggles_since(v0 + 2);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->size(), 1u);
  const auto none = c.free_map_toggles_since(c.free_map_version());
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->empty());

  // Reduce-side version is independent of map churn.
  EXPECT_EQ(c.free_reduce_version(), 0u);
  c.occupy_reduce_slot(NodeId(3));
  EXPECT_EQ(c.free_reduce_version(), 1u);
}

TEST(Cluster, JournalTrimForcesRebuild) {
  const auto topo = net::make_single_rack(2);
  NodeConfig cfg;
  cfg.map_slots = 1;
  Cluster c(&topo, cfg, Rng(1));
  // Push far past the journal capacity; a query anchored at version 0
  // must then report the window as lost (nullopt -> consumer rebuilds).
  for (int i = 0; i < 5000; ++i) {
    c.occupy_map_slot(NodeId(0));
    c.release_map_slot(NodeId(0));
  }
  EXPECT_FALSE(c.free_map_toggles_since(0).has_value());
  // Recent history is still replayable.
  const std::uint64_t v = c.free_map_version();
  c.occupy_map_slot(NodeId(1));
  const auto recent = c.free_map_toggles_since(v);
  ASSERT_TRUE(recent.has_value());
  EXPECT_EQ(recent->size(), 1u);
}

TEST(Cluster, SpeedFactorsWithinSpread) {
  const auto topo = net::make_single_rack(50);
  NodeConfig cfg;
  cfg.speed_spread = 0.2;
  Cluster c(&topo, cfg, Rng(5));
  bool varied = false;
  for (std::size_t i = 0; i < 50; ++i) {
    const double f = c.node(NodeId(i)).speed_factor;
    EXPECT_GE(f, 0.8);
    EXPECT_LE(f, 1.2);
    if (f != 1.0) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(Cluster, NoSpreadMeansUnitSpeed) {
  const auto topo = net::make_single_rack(4);
  Cluster c(&topo, NodeConfig{}, Rng(5));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(c.node(NodeId(i)).speed_factor, 1.0);
  }
}

TEST(Cluster, SpeedDrawsUseLabeledStreams) {
  // Each node's jitter comes from rng.split("node<i>-speed"), so the draw
  // for node i is a pure function of (seed, i, spread) — growing the
  // cluster must not reshuffle the factors of existing nodes.
  NodeConfig cfg;
  cfg.speed_spread = 0.2;
  const auto small_topo = net::make_single_rack(4);
  const auto large_topo = net::make_single_rack(16);
  const Cluster small(&small_topo, cfg, Rng(5));
  const Cluster large(&large_topo, cfg, Rng(5));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(small.node(NodeId(i)).speed_factor,
                     large.node(NodeId(i)).speed_factor)
        << "node " << i;
  }
}

TEST(Cluster, SpeedDrawsArePinned) {
  // Regression pin for the labeled speed streams: these literals are the
  // factors drawn for seed 5, spread 0.2. A change here means every
  // seeded experiment with speed_spread > 0 silently re-randomized.
  NodeConfig cfg;
  cfg.speed_spread = 0.2;
  const auto topo = net::make_single_rack(3);
  const Cluster c(&topo, cfg, Rng(5));
  const double expected[3] = {0.91699959375779783, 0.89495417224712825,
                              1.0112635133515473};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(c.node(NodeId(i)).speed_factor, expected[i])
        << "node " << i;
  }
}

TEST(Cluster, PerNodeConfigsCarryClassParameters) {
  const auto topo = net::make_single_rack(3);
  NodeConfig fast;
  fast.map_slots = 8;
  fast.reduce_slots = 4;
  fast.base_speed = 2.0;
  fast.class_index = 0;
  NodeConfig slow;
  slow.map_slots = 1;
  slow.reduce_slots = 1;
  slow.base_speed = 0.5;
  slow.class_index = 1;
  const std::vector<NodeConfig> per_node = {fast, slow, fast};
  Cluster c(&topo, per_node, {"fast", "slow"}, Rng(1));
  EXPECT_TRUE(c.has_node_classes());
  EXPECT_EQ(c.class_count(), 2u);
  EXPECT_EQ(c.class_name(0), "fast");
  EXPECT_EQ(c.class_name(1), "slow");
  EXPECT_EQ(c.total_map_slots(), 17u);
  EXPECT_EQ(c.total_reduce_slots(), 9u);
  EXPECT_EQ(c.node_class(NodeId(1)), 1u);
  // base_speed with zero spread is exact — no jitter draw is consumed.
  EXPECT_DOUBLE_EQ(c.node(NodeId(0)).speed_factor, 2.0);
  EXPECT_DOUBLE_EQ(c.node(NodeId(1)).speed_factor, 0.5);
  EXPECT_DOUBLE_EQ(c.node(NodeId(2)).speed_factor, 2.0);
}

TEST(Cluster, HomogeneousClusterReportsSingleDefaultClass) {
  const auto topo = net::make_single_rack(2);
  const Cluster c(&topo, NodeConfig{}, Rng(1));
  EXPECT_FALSE(c.has_node_classes());
  EXPECT_EQ(c.class_count(), 1u);
  EXPECT_EQ(c.class_name(0), "default");
  EXPECT_EQ(c.node_class(NodeId(1)), 0u);
}

TEST(Heartbeat, OneBeatPerNodePerInterval) {
  sim::Simulation s;
  HeartbeatService hb(&s, 4, 3.0);
  std::vector<int> beats(4, 0);
  hb.start([&](NodeId n) {
    ++beats[n.value()];
    if (s.now() > 29.0) hb.stop();
  });
  s.run(30.0);
  for (int b : beats) EXPECT_EQ(b, 10);  // 30s / 3s = 10 rounds
}

TEST(Heartbeat, PhasesAreStriped) {
  sim::Simulation s;
  HeartbeatService hb(&s, 3, 3.0);
  std::vector<Seconds> first_beat(3, -1.0);
  int seen = 0;
  hb.start([&](NodeId n) {
    if (first_beat[n.value()] < 0.0) {
      first_beat[n.value()] = s.now();
      if (++seen == 3) hb.stop();
    }
  });
  s.run(4.0);
  EXPECT_DOUBLE_EQ(first_beat[0], 0.0);
  EXPECT_DOUBLE_EQ(first_beat[1], 1.0);
  EXPECT_DOUBLE_EQ(first_beat[2], 2.0);
}

TEST(Heartbeat, StopDrainsQueue) {
  sim::Simulation s;
  HeartbeatService hb(&s, 5, 3.0);
  hb.start([&](NodeId) {
    if (s.now() >= 9.0) hb.stop();
  });
  s.run();  // must terminate (no infinite rescheduling)
  EXPECT_LT(s.now(), 13.0);
  EXPECT_GT(hb.beats_delivered(), 0u);
}

TEST(Heartbeat, BeatsCounted) {
  sim::Simulation s;
  HeartbeatService hb(&s, 2, 1.0);
  std::size_t seen = 0;
  hb.start([&](NodeId) {
    ++seen;
    if (seen == 6) hb.stop();
  });
  s.run();
  EXPECT_EQ(hb.beats_delivered(), 6u);
}

}  // namespace
}  // namespace mrs::cluster
