// Tests for the slot-based cluster model and the heartbeat service.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mrs/cluster/cluster.hpp"
#include "mrs/cluster/heartbeat.hpp"
#include "mrs/sim/simulation.hpp"

namespace mrs::cluster {
namespace {

TEST(Cluster, InitialSlots) {
  const auto topo = net::make_single_rack(5);
  NodeConfig cfg;
  cfg.map_slots = 4;
  cfg.reduce_slots = 2;
  Cluster c(&topo, cfg, Rng(1));
  EXPECT_EQ(c.node_count(), 5u);
  EXPECT_EQ(c.total_map_slots(), 20u);
  EXPECT_EQ(c.total_reduce_slots(), 10u);
  EXPECT_EQ(c.busy_map_slots(), 0u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(c.node(NodeId(i)).free_map_slots(), 4u);
    EXPECT_EQ(c.node(NodeId(i)).free_reduce_slots(), 2u);
  }
}

TEST(Cluster, OccupyRelease) {
  const auto topo = net::make_single_rack(2);
  Cluster c(&topo, NodeConfig{}, Rng(1));
  c.occupy_map_slot(NodeId(0));
  c.occupy_map_slot(NodeId(0));
  EXPECT_EQ(c.node(NodeId(0)).free_map_slots(), 2u);
  EXPECT_EQ(c.busy_map_slots(), 2u);
  c.release_map_slot(NodeId(0));
  EXPECT_EQ(c.node(NodeId(0)).free_map_slots(), 3u);
  c.occupy_reduce_slot(NodeId(1));
  EXPECT_EQ(c.busy_reduce_slots(), 1u);
  c.release_reduce_slot(NodeId(1));
  EXPECT_EQ(c.busy_reduce_slots(), 0u);
}

TEST(Cluster, FreeSlotLists) {
  const auto topo = net::make_single_rack(3);
  NodeConfig cfg;
  cfg.map_slots = 1;
  cfg.reduce_slots = 1;
  Cluster c(&topo, cfg, Rng(1));
  c.occupy_map_slot(NodeId(1));
  const auto maps = c.nodes_with_free_map_slots();
  EXPECT_EQ(maps, (std::vector<NodeId>{NodeId(0), NodeId(2)}));
  c.occupy_reduce_slot(NodeId(0));
  c.occupy_reduce_slot(NodeId(2));
  const auto reduces = c.nodes_with_free_reduce_slots();
  EXPECT_EQ(reduces, (std::vector<NodeId>{NodeId(1)}));
}

TEST(Cluster, SpeedFactorsWithinSpread) {
  const auto topo = net::make_single_rack(50);
  NodeConfig cfg;
  cfg.speed_spread = 0.2;
  Cluster c(&topo, cfg, Rng(5));
  bool varied = false;
  for (std::size_t i = 0; i < 50; ++i) {
    const double f = c.node(NodeId(i)).speed_factor;
    EXPECT_GE(f, 0.8);
    EXPECT_LE(f, 1.2);
    if (f != 1.0) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(Cluster, NoSpreadMeansUnitSpeed) {
  const auto topo = net::make_single_rack(4);
  Cluster c(&topo, NodeConfig{}, Rng(5));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(c.node(NodeId(i)).speed_factor, 1.0);
  }
}

TEST(Heartbeat, OneBeatPerNodePerInterval) {
  sim::Simulation s;
  HeartbeatService hb(&s, 4, 3.0);
  std::vector<int> beats(4, 0);
  hb.start([&](NodeId n) {
    ++beats[n.value()];
    if (s.now() > 29.0) hb.stop();
  });
  s.run(30.0);
  for (int b : beats) EXPECT_EQ(b, 10);  // 30s / 3s = 10 rounds
}

TEST(Heartbeat, PhasesAreStriped) {
  sim::Simulation s;
  HeartbeatService hb(&s, 3, 3.0);
  std::vector<Seconds> first_beat(3, -1.0);
  int seen = 0;
  hb.start([&](NodeId n) {
    if (first_beat[n.value()] < 0.0) {
      first_beat[n.value()] = s.now();
      if (++seen == 3) hb.stop();
    }
  });
  s.run(4.0);
  EXPECT_DOUBLE_EQ(first_beat[0], 0.0);
  EXPECT_DOUBLE_EQ(first_beat[1], 1.0);
  EXPECT_DOUBLE_EQ(first_beat[2], 2.0);
}

TEST(Heartbeat, StopDrainsQueue) {
  sim::Simulation s;
  HeartbeatService hb(&s, 5, 3.0);
  hb.start([&](NodeId) {
    if (s.now() >= 9.0) hb.stop();
  });
  s.run();  // must terminate (no infinite rescheduling)
  EXPECT_LT(s.now(), 13.0);
  EXPECT_GT(hb.beats_delivered(), 0u);
}

TEST(Heartbeat, BeatsCounted) {
  sim::Simulation s;
  HeartbeatService hb(&s, 2, 1.0);
  std::size_t seen = 0;
  hb.start([&](NodeId) {
    ++seen;
    if (seen == 6) hb.stop();
  });
  s.run();
  EXPECT_EQ(hb.beats_delivered(), 6u);
}

}  // namespace
}  // namespace mrs::cluster
