// Tests for the CSV writer, ASCII table renderer and strfmt helper.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "mrs/common/csv.hpp"
#include "mrs/common/strfmt.hpp"
#include "mrs/common/table.hpp"

namespace mrs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ =
      (std::filesystem::temp_directory_path() / "pnats_csv_test.csv").string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row({"1", "2"});
    w.row_values({3.5, 4.0});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2\n3.5,4\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter w(path_, {"name"});
    w.row({"has,comma"});
    w.row({"has\"quote"});
    w.row({"has\nnewline"});
  }
  const std::string content = slurp(path_);
  EXPECT_NE(content.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(content.find("\"has\nnewline\""), std::string::npos);
}

TEST_F(CsvTest, PlainFieldsUnquoted) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with space"), "with space");
}

TEST(CsvWriterErrors, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(AsciiTable, RendersAlignedBox) {
  AsciiTable t({"name", "count"});
  t.set_right_aligned(1);
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "1234"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | count |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| bb    |  1234 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(AsciiTable, WidthGrowsWithContent) {
  AsciiTable t({"x"});
  t.add_row({"a-very-long-cell-value"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a-very-long-cell-value"), std::string::npos);
}

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("n=%d", 42), "n=42");
  EXPECT_EQ(strf("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(strf("%s-%zu", "node", std::size_t{7}), "node-7");
  EXPECT_EQ(strf("empty"), "empty");
}

TEST(Strf, LongStringsNotTruncated) {
  const std::string big(5000, 'x');
  EXPECT_EQ(strf("%s", big.c_str()).size(), 5000u);
}

}  // namespace
}  // namespace mrs
