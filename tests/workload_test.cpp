// Tests for the Table II catalog, application profiles and batch builder.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "mrs/dfs/block_store.hpp"
#include "mrs/workload/table2.hpp"

namespace mrs::workload {
namespace {

using mapreduce::JobKind;

TEST(Table2, ThirtyJobsInCatalog) {
  const auto& cat = table2_catalog();
  ASSERT_EQ(cat.size(), 30u);
  EXPECT_EQ(cat.front().job_id, "01");
  EXPECT_EQ(cat.back().job_id, "30");
}

TEST(Table2, ExactPaperEntries) {
  const auto& cat = table2_catalog();
  // Spot-check entries straight out of Table II.
  EXPECT_EQ(cat[0].name, "Wordcount_10GB");
  EXPECT_EQ(cat[0].map_count, 88u);
  EXPECT_EQ(cat[0].reduce_count, 157u);
  EXPECT_EQ(cat[9].name, "Wordcount_100GB");
  EXPECT_EQ(cat[9].map_count, 930u);
  EXPECT_EQ(cat[9].reduce_count, 197u);
  EXPECT_EQ(cat[10].name, "Terasort_10GB");
  EXPECT_EQ(cat[10].map_count, 143u);
  EXPECT_EQ(cat[19].map_count, 824u);
  EXPECT_EQ(cat[29].name, "Grep_100GB");
  EXPECT_EQ(cat[29].map_count, 893u);
  EXPECT_EQ(cat[29].reduce_count, 184u);
}

TEST(Table2, BatchSplitByKind) {
  for (auto kind :
       {JobKind::kWordcount, JobKind::kTerasort, JobKind::kGrep}) {
    const auto batch = table2_batch(kind);
    EXPECT_EQ(batch.size(), 10u);
    for (const auto& d : batch) EXPECT_EQ(d.kind, kind);
  }
}

TEST(Table2, NominalSizesCoverTenToHundredGb) {
  for (const auto& batch : {table2_batch(JobKind::kWordcount),
                            table2_batch(JobKind::kTerasort),
                            table2_batch(JobKind::kGrep)}) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_DOUBLE_EQ(batch[i].nominal_gb, 10.0 * double(i + 1));
    }
  }
}

TEST(Profiles, KindsMatch) {
  EXPECT_EQ(wordcount_profile().kind, JobKind::kWordcount);
  EXPECT_EQ(terasort_profile().kind, JobKind::kTerasort);
  EXPECT_EQ(grep_profile().kind, JobKind::kGrep);
  EXPECT_EQ(profile_for(JobKind::kTerasort).kind, JobKind::kTerasort);
}

TEST(Profiles, ShuffleIntensityOrdering) {
  // Fig. 3's split: Wordcount/Terasort are shuffle-heavy, Grep is not.
  EXPECT_GT(wordcount_profile().map_selectivity, 1.0);
  EXPECT_DOUBLE_EQ(terasort_profile().map_selectivity, 1.0);
  EXPECT_LT(grep_profile().map_selectivity, 0.3);
  // Grep maps scan faster than CPU-heavy Wordcount maps.
  EXPECT_GT(grep_profile().map_rate, wordcount_profile().map_rate);
}

TEST(MakeJobSpec, OneBlockPerMapTask) {
  const auto topo = net::make_single_rack(8);
  dfs::BlockStore store(8);
  dfs::BlockPlacer placer(&topo, Rng(1));
  WorkloadConfig cfg;
  const auto desc = table2_catalog()[0];  // 88 maps
  const auto spec =
      make_job_spec(desc, wordcount_profile(), store, placer, cfg, 5.0);
  EXPECT_EQ(spec.map_tasks.size(), 88u);
  EXPECT_EQ(spec.reduce_count, 157u);
  EXPECT_EQ(store.block_count(), 88u);
  EXPECT_DOUBLE_EQ(spec.submit_time, 5.0);
  for (const auto& mt : spec.map_tasks) {
    EXPECT_DOUBLE_EQ(mt.input_size, cfg.block_size);
    EXPECT_EQ(store.replicas(mt.block).size(), cfg.replication);
  }
}

TEST(MakeBatch, SubmitSpacing) {
  const auto topo = net::make_single_rack(8);
  dfs::BlockStore store(8);
  dfs::BlockPlacer placer(&topo, Rng(2));
  WorkloadConfig cfg;
  cfg.submit_spacing = 10.0;
  const auto specs =
      make_batch(table2_batch(JobKind::kGrep), store, placer, cfg);
  ASSERT_EQ(specs.size(), 10u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_DOUBLE_EQ(specs[i].submit_time, 10.0 * double(i));
  }
}

TEST(MakeBatch, WriterAnchoringConcentratesFirstReplicas) {
  const auto topo = net::make_single_rack(20);
  dfs::BlockStore store(20);
  dfs::BlockPlacer placer(&topo, Rng(3));
  WorkloadConfig cfg;
  cfg.writer_count = 2;
  const auto desc = table2_catalog()[20];  // Grep_10GB, 87 maps
  const auto spec =
      make_job_spec(desc, grep_profile(), store, placer, cfg, 0.0);
  // Every block has a replica on writer 0 or writer 1.
  for (const auto& mt : spec.map_tasks) {
    const bool anchored = store.is_replica(NodeId(0), mt.block) ||
                          store.is_replica(NodeId(1), mt.block);
    EXPECT_TRUE(anchored);
  }
  EXPECT_GT(store.bytes_on_node(NodeId(0)),
            store.bytes_on_node(NodeId(5)) * 2);
}

TEST(MakeBatch, ShuffleSizesMatchFig3Shape) {
  // Build all 30 jobs and check the intermediate-size distribution shape
  // the paper reports around Fig. 3: grep jobs are the small-shuffle
  // population, wordcount jobs the large one.
  const auto topo = net::make_single_rack(60);
  dfs::BlockStore store(60);
  dfs::BlockPlacer placer(&topo, Rng(4));
  WorkloadConfig cfg;
  const auto specs = make_batch(table2_catalog(), store, placer, cfg);
  double wc_shuffle = 0.0, grep_shuffle = 0.0;
  for (const auto& s : specs) {
    const double shuffle = s.total_input() * s.map_selectivity;
    if (s.kind == JobKind::kWordcount) wc_shuffle += shuffle;
    if (s.kind == JobKind::kGrep) grep_shuffle += shuffle;
  }
  EXPECT_GT(wc_shuffle, 10.0 * grep_shuffle);
}

class JobsCsvTest : public ::testing::Test {
 protected:
  std::string path_ =
      (std::filesystem::temp_directory_path() / "pnats_jobs_test.csv")
          .string();
  void TearDown() override { std::remove(path_.c_str()); }
  void write(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
};

TEST_F(JobsCsvTest, ParsesValidFile) {
  write("name,kind,maps,reduces\n"
        "# a comment\n"
        "JobA,Wordcount,10,4\n"
        "JobB,Grep,7,2\n");
  const auto jobs = load_jobs_csv(path_);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "JobA");
  EXPECT_EQ(jobs[0].kind, JobKind::kWordcount);
  EXPECT_EQ(jobs[0].map_count, 10u);
  EXPECT_EQ(jobs[1].reduce_count, 2u);
  EXPECT_EQ(jobs[1].kind, JobKind::kGrep);
}

TEST_F(JobsCsvTest, RejectsUnknownKind) {
  write("name,kind,maps,reduces\nX,Sort,1,1\n");
  EXPECT_THROW(load_jobs_csv(path_), std::runtime_error);
}

TEST_F(JobsCsvTest, RejectsMalformedRow) {
  write("name,kind,maps,reduces\nX,Grep,1\n");
  EXPECT_THROW(load_jobs_csv(path_), std::runtime_error);
}

TEST_F(JobsCsvTest, RejectsZeroCounts) {
  write("name,kind,maps,reduces\nX,Grep,0,1\n");
  EXPECT_THROW(load_jobs_csv(path_), std::runtime_error);
}

TEST_F(JobsCsvTest, RejectsEmptyFile) {
  write("name,kind,maps,reduces\n");
  EXPECT_THROW(load_jobs_csv(path_), std::runtime_error);
}

TEST_F(JobsCsvTest, MissingFileThrows) {
  EXPECT_THROW(load_jobs_csv("/nonexistent/jobs.csv"), std::runtime_error);
}

TEST(MakeJobSpec, DeterministicPlacementPerSeed) {
  auto build = [] {
    const auto topo = net::make_single_rack(10);
    dfs::BlockStore store(10);
    dfs::BlockPlacer placer(&topo, Rng(9));
    WorkloadConfig cfg;
    const auto spec = make_job_spec(table2_catalog()[21], grep_profile(),
                                    store, placer, cfg, 0.0);
    std::vector<std::size_t> replicas;
    for (const auto& mt : spec.map_tasks) {
      for (NodeId n : store.replicas(mt.block)) replicas.push_back(n.value());
    }
    return replicas;
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace mrs::workload
