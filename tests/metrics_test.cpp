// Tests for the metrics aggregation (locality, CDFs, reductions).
#include <gtest/gtest.h>

#include "mrs/metrics/summary.hpp"

namespace mrs::metrics {
namespace {

TaskRecord task(bool is_map, Locality loc, Seconds assigned, Seconds done,
                std::size_t job = 0, double cost = 0.0) {
  TaskRecord t;
  t.job = JobId(job);
  t.is_map = is_map;
  t.locality = loc;
  t.assigned_at = assigned;
  t.finished_at = done;
  t.placement_cost = cost;
  return t;
}

JobRecord job(std::size_t id, const std::string& name, Seconds submit,
              Seconds finish) {
  JobRecord j;
  j.id = JobId(id);
  j.name = name;
  j.submit_time = submit;
  j.finish_time = finish;
  return j;
}

TEST(LocalitySummary, Percentages) {
  std::vector<TaskRecord> tasks = {
      task(true, Locality::kNodeLocal, 0, 1),
      task(true, Locality::kNodeLocal, 0, 1),
      task(true, Locality::kRackLocal, 0, 1),
      task(false, Locality::kRemote, 0, 1),
  };
  const auto all = locality_summary(tasks, TaskFilter::kAll);
  EXPECT_EQ(all.total, 4u);
  EXPECT_DOUBLE_EQ(all.node_local_pct, 50.0);
  EXPECT_DOUBLE_EQ(all.rack_local_pct, 25.0);
  EXPECT_DOUBLE_EQ(all.remote_pct, 25.0);

  const auto maps = locality_summary(tasks, TaskFilter::kMapsOnly);
  EXPECT_EQ(maps.total, 3u);
  EXPECT_NEAR(maps.node_local_pct, 200.0 / 3.0, 1e-9);

  const auto reduces = locality_summary(tasks, TaskFilter::kReducesOnly);
  EXPECT_EQ(reduces.total, 1u);
  EXPECT_DOUBLE_EQ(reduces.remote_pct, 100.0);
}

TEST(LocalitySummary, EmptyInput) {
  const auto s = locality_summary({}, TaskFilter::kAll);
  EXPECT_EQ(s.total, 0u);
  EXPECT_DOUBLE_EQ(s.node_local_pct, 0.0);
}

TEST(JobCompletionCdf, UsesCompletionTimes) {
  std::vector<JobRecord> jobs = {job(0, "a", 0, 100), job(1, "b", 50, 100),
                                 job(2, "c", 0, 300)};
  const Cdf cdf = job_completion_cdf(jobs);
  EXPECT_EQ(cdf.count(), 3u);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 300.0);
}

TEST(TaskTimeCdf, FiltersByKind) {
  std::vector<TaskRecord> tasks = {
      task(true, Locality::kNodeLocal, 0, 10),
      task(true, Locality::kNodeLocal, 5, 10),
      task(false, Locality::kNodeLocal, 0, 100),
  };
  EXPECT_EQ(task_time_cdf(tasks, TaskFilter::kMapsOnly).count(), 2u);
  EXPECT_DOUBLE_EQ(
      task_time_cdf(tasks, TaskFilter::kReducesOnly).value_at(1.0), 100.0);
}

TEST(CompletionReduction, PairsByName) {
  // ours is 20% faster on "a", 50% slower on "b"; "c" unmatched.
  std::vector<JobRecord> ours = {job(0, "a", 0, 80), job(1, "b", 0, 150),
                                 job(2, "c", 0, 10)};
  std::vector<JobRecord> base = {job(0, "a", 0, 100), job(1, "b", 0, 100)};
  const auto stats = completion_reduction(ours, base);
  EXPECT_EQ(stats.pairs, 2u);
  EXPECT_NEAR(stats.mean, (0.2 - 0.5) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.cdf.value_at(1.0), 0.2);
  EXPECT_DOUBLE_EQ(stats.cdf.value_at(0.0), -0.5);
}

TEST(CompletionReduction, IdenticalRunsZero) {
  std::vector<JobRecord> a = {job(0, "x", 0, 50)};
  const auto stats = completion_reduction(a, a);
  EXPECT_EQ(stats.pairs, 1u);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(PerJobMapLocality, ComputesFractions) {
  std::vector<JobRecord> jobs = {job(0, "a", 0, 1), job(1, "b", 0, 1)};
  std::vector<TaskRecord> tasks = {
      task(true, Locality::kNodeLocal, 0, 1, 0),
      task(true, Locality::kRackLocal, 0, 1, 0),
      task(false, Locality::kRemote, 0, 1, 0),  // reduce: ignored
      task(true, Locality::kNodeLocal, 0, 1, 1),
  };
  const auto out = per_job_map_locality(jobs, tasks);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].map_local_fraction, 0.5);
  EXPECT_DOUBLE_EQ(out[1].map_local_fraction, 1.0);
}

TEST(PerJobMapLocality, JobWithoutTasksIsZero) {
  std::vector<JobRecord> jobs = {job(7, "empty", 0, 1)};
  const auto out = per_job_map_locality(jobs, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].map_local_fraction, 0.0);
}

TEST(MeanPlacementCost, FiltersAndAverages) {
  std::vector<TaskRecord> tasks = {
      task(true, Locality::kNodeLocal, 0, 1, 0, 10.0),
      task(true, Locality::kNodeLocal, 0, 1, 0, 30.0),
      task(false, Locality::kNodeLocal, 0, 1, 0, 1000.0),
  };
  EXPECT_DOUBLE_EQ(mean_placement_cost(tasks, TaskFilter::kMapsOnly), 20.0);
  EXPECT_DOUBLE_EQ(mean_placement_cost(tasks, TaskFilter::kReducesOnly),
                   1000.0);
  EXPECT_DOUBLE_EQ(mean_placement_cost({}, TaskFilter::kAll), 0.0);
}

TEST(Timeline, CountsConcurrentTasks) {
  std::vector<TaskRecord> tasks = {
      task(true, Locality::kNodeLocal, 0.0, 10.0),
      task(true, Locality::kNodeLocal, 2.0, 6.0),
      task(true, Locality::kNodeLocal, 8.0, 12.0),
      task(false, Locality::kNodeLocal, 0.0, 100.0),  // reduce: filtered
  };
  const auto tl =
      running_tasks_timeline(tasks, TaskFilter::kMapsOnly, 1.0);
  ASSERT_FALSE(tl.empty());
  auto at = [&](Seconds t) {
    for (const auto& p : tl) {
      if (p.time == t) return p.running;
    }
    return std::size_t(9999);
  };
  EXPECT_EQ(at(0.0), 1u);
  EXPECT_EQ(at(3.0), 2u);
  EXPECT_EQ(at(7.0), 1u);   // second finished at 6
  EXPECT_EQ(at(9.0), 2u);   // third started at 8
  EXPECT_EQ(at(13.0), 0u);  // all done
  const auto summary = summarize_timeline(tl);
  EXPECT_EQ(summary.peak_running, 2u);
  EXPECT_GT(summary.mean_running, 0.0);
}

TEST(Timeline, EmptyInput) {
  const auto tl = running_tasks_timeline({}, TaskFilter::kAll, 1.0);
  EXPECT_TRUE(tl.empty());
  const auto summary = summarize_timeline(tl);
  EXPECT_EQ(summary.peak_running, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_running, 0.0);
}

TEST(UtilizationSummary, Ratios) {
  mapreduce::UtilizationSummary u;
  u.map_slot_seconds_busy = 120.0;
  u.reduce_slot_seconds_busy = 30.0;
  u.span = 60.0;
  u.total_map_slots = 4;
  u.total_reduce_slots = 2;
  EXPECT_DOUBLE_EQ(u.map_utilization(), 0.5);
  EXPECT_DOUBLE_EQ(u.reduce_utilization(), 0.25);
}

TEST(UtilizationSummary, ZeroSpanSafe) {
  mapreduce::UtilizationSummary u;
  EXPECT_DOUBLE_EQ(u.map_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(u.reduce_utilization(), 0.0);
}

}  // namespace
}  // namespace mrs::metrics
