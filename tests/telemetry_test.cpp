// Tests for the telemetry subsystem: registry semantics, histogram edge
// cases, sim-time sampler alignment, export formats, and the determinism
// contract (serial vs parallel runs produce identical metric values).
#include <gtest/gtest.h>

#include <sstream>

#include "mrs/driver/experiment.hpp"
#include "mrs/sim/simulation.hpp"
#include "mrs/telemetry/export.hpp"
#include "mrs/telemetry/perfetto.hpp"
#include "mrs/telemetry/registry.hpp"
#include "mrs/telemetry/sampler.hpp"

namespace mrs::telemetry {
namespace {

// --- registry ---

TEST(Registry, FindOrCreateReturnsStableObjects) {
  Registry r;
  Counter& a = r.counter("x");
  a.inc(3);
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  Gauge& g = r.gauge("g");
  g.set(1.5);
  EXPECT_EQ(&g, &r.gauge("g"));
  Histogram& h = r.histogram("h", 0.0, 1.0, 10);
  EXPECT_EQ(&h, &r.histogram("h", 0.0, 1.0, 10));
  TimerStat& t = r.timer("t");
  EXPECT_EQ(&t, &r.timer("t"));
}

TEST(Registry, SnapshotIsNameSortedAndComplete) {
  Registry r;
  r.counter("b.second").inc(2);
  r.counter("a.first").inc(1);
  r.gauge("z").set(4.0);
  r.histogram("h", 0.0, 1.0, 4).observe(0.5);
  r.timer("t").add_ns(100);
  const Snapshot s = r.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].name, "a.first");
  EXPECT_EQ(s.counters[1].name, "b.second");
  EXPECT_EQ(s.counter("a.first"), 1u);
  EXPECT_EQ(s.counter("b.second"), 2u);
  EXPECT_EQ(s.counter("missing"), 0u);  // absent -> 0, not a throw
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].value, 4.0);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].counts[2], 1u);
  ASSERT_EQ(s.timers.size(), 1u);
  EXPECT_EQ(s.timers[0].total_ns, 100u);
}

TEST(Registry, NullTolerantHelpersAreNoOps) {
  inc(nullptr);
  inc(nullptr, 5);
  observe(nullptr, 1.0);
  set(nullptr, 2.0);
  { ScopedTimer t(nullptr); }  // must not crash or record
  Registry r;
  Counter& c = r.counter("c");
  inc(&c, 2);
  EXPECT_EQ(c.value(), 2u);
}

// --- histogram edge cases ---

TEST(Histogram, BucketBoundariesAndOverflow) {
  Histogram h(0.0, 1.0, 10);
  h.observe(-0.001);  // below lo -> underflow
  h.observe(0.0);     // exactly lo -> bucket 0
  h.observe(0.099999);
  h.observe(0.1);  // boundary belongs to the upper bucket
  h.observe(0.95);
  h.observe(0.9999999999);  // just under hi -> top bucket (clamped)
  h.observe(1.0);           // exactly hi -> overflow
  h.observe(42.0);

  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 2u);  // 0.0 and 0.099999
  EXPECT_EQ(h.count(1), 1u);  // 0.1
  EXPECT_EQ(h.count(9), 2u);  // 0.95 and the clamped near-1.0
  EXPECT_EQ(h.total(), 8u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(9), 1.0);
}

TEST(Histogram, SingleBucketDegenerateCase) {
  Histogram h(5.0, 6.0, 1);
  h.observe(5.0);
  h.observe(5.999);
  h.observe(6.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.overflow(), 1u);
}

// --- sampler ---

TEST(Sampler, RowsAlignToPeriodAndStopOnDone) {
  sim::Simulation sim;
  // Keep the sim alive past the sampler with unrelated events.
  for (double t : {1.0, 7.0, 13.0}) sim.schedule_at(t, [] {});
  Sampler sampler(
      &sim, {"now", "twice"}, 5.0,
      [&sim](Seconds now, std::vector<double>& row) {
        row = {now, 2.0 * now};
      },
      [&sim] { return sim.now() >= 17.0; });
  sampler.start();
  sim.run(1e6);

  const TimeSeries& ts = sampler.series();
  ASSERT_EQ(ts.columns.size(), 2u);
  // Samples at 0,5,10,15 (done still false), one final at 20, then stop.
  ASSERT_EQ(ts.rows.size(), 5u);
  for (std::size_t i = 0; i < ts.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(ts.rows[i].t, 5.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(ts.rows[i].values[0], ts.rows[i].t);
    EXPECT_DOUBLE_EQ(ts.rows[i].values[1], 2.0 * ts.rows[i].t);
  }
  EXPECT_EQ(ts.column("twice"), 1u);
  EXPECT_EQ(ts.column("absent"), TimeSeries::npos);
}

TEST(Sampler, SliceImplementsWarmupWindow) {
  TimeSeries ts;
  ts.columns = {"v"};
  for (double t : {0.0, 10.0, 20.0, 30.0, 40.0}) {
    ts.rows.push_back({t, {t}});
  }
  // Measurement window [warmup, end): drops warmup rows and the tail.
  const TimeSeries win = ts.slice(10.0, 40.0);
  ASSERT_EQ(win.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(win.rows.front().t, 10.0);
  EXPECT_DOUBLE_EQ(win.rows.back().t, 30.0);
  EXPECT_EQ(win.columns, ts.columns);
  EXPECT_TRUE(ts.slice(100.0, 200.0).empty());
}

// --- experiment integration & determinism ---

driver::ExperimentConfig tiny_config(std::uint64_t seed) {
  using mapreduce::JobKind;
  std::vector<workload::JobDescription> jobs = {
      {"t1", "Wordcount_tiny", JobKind::kWordcount, 1, 12, 6},
      {"t2", "Terasort_tiny", JobKind::kTerasort, 1, 10, 5},
  };
  driver::ExperimentConfig cfg =
      driver::paper_config(std::move(jobs), driver::SchedulerKind::kPna,
                           seed);
  cfg.nodes = 8;
  cfg.sample_period = 5.0;
  return cfg;
}

void expect_same_deterministic_metrics(const Snapshot& a,
                                       const Snapshot& b) {
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].name, b.counters[i].name);
    EXPECT_EQ(a.counters[i].value, b.counters[i].value)
        << a.counters[i].name;
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    EXPECT_EQ(a.histograms[i].name, b.histograms[i].name);
    EXPECT_EQ(a.histograms[i].counts, b.histograms[i].counts)
        << a.histograms[i].name;
    EXPECT_EQ(a.histograms[i].underflow, b.histograms[i].underflow);
    EXPECT_EQ(a.histograms[i].overflow, b.histograms[i].overflow);
  }
  ASSERT_EQ(a.gauges.size(), b.gauges.size());
  for (std::size_t i = 0; i < a.gauges.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.gauges[i].value, b.gauges[i].value)
        << a.gauges[i].name;
  }
  // Timers (wall clock) are intentionally excluded: non-deterministic.
}

TEST(TelemetryIntegration, EngineAndSchedulerCountersAreCoherent) {
  const auto result = driver::run_experiment(tiny_config(42));
  ASSERT_TRUE(result.completed);
  const Snapshot& s = result.telemetry;

  EXPECT_EQ(s.counter("engine.jobs.activated"), 2u);
  EXPECT_EQ(s.counter("engine.jobs.finished"), 2u);
  // Locality split sums to assigned maps; every first-attempt map came
  // through the scheduler.
  const std::uint64_t maps = s.counter("engine.maps.assigned");
  EXPECT_GE(maps, 22u);  // 12 + 10, more if attempts were killed/retried
  EXPECT_EQ(s.counter("engine.maps.locality.node") +
                s.counter("engine.maps.locality.rack") +
                s.counter("engine.maps.locality.remote"),
            maps);
  EXPECT_EQ(s.counter("engine.reduces.locality.node") +
                s.counter("engine.reduces.locality.rack") +
                s.counter("engine.reduces.locality.remote"),
            s.counter("engine.reduces.assigned"));
  EXPECT_GT(s.counter("engine.heartbeats"), 0u);
  EXPECT_GT(s.counter("pna.map.attempts"), 0u);
  EXPECT_GT(s.counter("pna.reduce.attempts"), 0u);

  // The P histogram counts every scored decision: one entry per non-empty
  // candidate scan.
  std::uint64_t p_total = 0;
  for (const auto& h : s.histograms) {
    if (h.name == "pna.map.p" || h.name == "pna.reduce.p") {
      for (auto c : h.counts) p_total += c;
      p_total += h.underflow + h.overflow;
      EXPECT_EQ(h.underflow, 0u) << h.name;  // P is never negative
    }
  }
  EXPECT_GT(p_total, 0u);

  // Sampler ran: rows every 5 sim-seconds from 0, gauges mirror the last
  // row.
  ASSERT_FALSE(result.samples.empty());
  EXPECT_DOUBLE_EQ(result.samples.rows[0].t, 0.0);
  if (result.samples.rows.size() > 1) {
    EXPECT_DOUBLE_EQ(result.samples.rows[1].t, 5.0);
  }
  const std::size_t done = result.samples.column("jobs_completed");
  ASSERT_NE(done, TimeSeries::npos);
  EXPECT_DOUBLE_EQ(result.samples.rows.back().values[done], 2.0);
}

TEST(TelemetryIntegration, SerialAndParallelRunsAgree) {
  const auto serial = driver::run_experiment(tiny_config(7));
  std::vector<driver::ExperimentConfig> cfgs = {tiny_config(7),
                                                tiny_config(7)};
  const auto parallel = driver::run_experiments(cfgs);
  ASSERT_EQ(parallel.size(), 2u);
  expect_same_deterministic_metrics(serial.telemetry,
                                    parallel[0].telemetry);
  expect_same_deterministic_metrics(serial.telemetry,
                                    parallel[1].telemetry);
  ASSERT_EQ(serial.samples.rows.size(), parallel[0].samples.rows.size());
  for (std::size_t i = 0; i < serial.samples.rows.size(); ++i) {
    EXPECT_EQ(serial.samples.rows[i].values,
              parallel[0].samples.rows[i].values);
  }
}

TEST(TelemetryIntegration, DetachedRunHasNoTelemetryCost) {
  // sample_period = 0 and no paths: result carries an empty series and the
  // run still completes (all metric pointers stay null on the hot path —
  // the registry snapshot only ever contains the driver's run timer).
  auto cfg = tiny_config(42);
  cfg.sample_period = 0.0;
  const auto result = driver::run_experiment(cfg);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.samples.empty());
}

// --- exporters ---

Snapshot example_snapshot() {
  Registry r;
  r.counter("c.events").inc(3);
  r.gauge("g.depth").set(2.5);
  Histogram& h = r.histogram("h.p", 0.0, 1.0, 4);
  h.observe(0.1);
  h.observe(0.9);
  h.observe(2.0);
  r.timer("t.wall").add_ns(1500000);
  return r.snapshot();
}

TimeSeries example_series() {
  TimeSeries ts;
  ts.columns = {"depth", "util"};
  ts.rows.push_back({0.0, {1.0, 0.25}});
  ts.rows.push_back({10.0, {3.0, 0.75}});
  return ts;
}

TEST(JsonlExport, EveryLineIsABalancedObjectWithType) {
  const std::string doc = to_jsonl(example_snapshot(), example_series());
  std::istringstream in(doc);
  std::string line;
  std::size_t lines = 0, samples = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":"), std::string::npos);
    // Balanced braces and quotes on each line (no raw newline leaked).
    int depth = 0;
    std::size_t quotes = 0;
    for (char c : line) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
      if (c == '"') ++quotes;
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(quotes % 2, 0u);
    if (line.find("\"type\":\"sample\"") != std::string::npos) ++samples;
  }
  EXPECT_EQ(samples, 2u);
  // 2 samples + counter + gauge + histogram + timer.
  EXPECT_EQ(lines, 6u);
  EXPECT_NE(doc.find("\"c.events\""), std::string::npos);
  EXPECT_NE(doc.find("\"value\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"overflow\":1"), std::string::npos);
}

TEST(JsonlExport, EscapesHostileStrings) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(PerfettoExport, EmitsBalancedJsonWithSlicesAndCounters) {
  std::vector<sim::TraceEvent> events = {
      {0.0, sim::TraceEventKind::kJobActivated, "job1", ""},
      {1.0, sim::TraceEventKind::kMapAssigned, "job1/map/0",
       "node=2 locality=node-local"},
      {4.0, sim::TraceEventKind::kMapFinished, "job1/map/0", "node=2"},
      {2.0, sim::TraceEventKind::kReduceAssigned, "job1/reduce/0",
       "node=1"},
      {5.5, sim::TraceEventKind::kReduceKilled, "job1/reduce/0",
       "node=1 reason=node-failure"},
      {3.0, sim::TraceEventKind::kSpeculativeLaunch, "job1/map/1",
       "node=0"},
      {6.0, sim::TraceEventKind::kJobFinished, "job1", ""},
  };
  const std::string doc =
      to_chrome_trace(events, example_snapshot(), example_series());

  // Structurally balanced JSON document.
  int braces = 0, brackets = 0;
  for (char c : doc) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(doc.substr(0, 16), "{\"traceEvents\":[");
  const std::size_t last = doc.find_last_not_of("\n ");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(doc[last], '}');

  // Complete slices for the map (assigned->finished) and the killed
  // reduce, with sim seconds scaled to microseconds.
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":3000000"), std::string::npos);  // 3 s map
  // Instant for the speculative launch, counters from the series, and
  // process-name metadata.
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(doc.find("process_name"), std::string::npos);
}

TEST(PerfettoExport, UnpairedAssignIsTolerated) {
  // An assignment with no finish (run truncated) must not corrupt the
  // document.
  std::vector<sim::TraceEvent> events = {
      {1.0, sim::TraceEventKind::kMapAssigned, "j/map/0", "node=0"},
  };
  const std::string doc =
      to_chrome_trace(events, Snapshot{}, TimeSeries{});
  int braces = 0;
  for (char c : doc) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
  }
  EXPECT_EQ(braces, 0);
}

}  // namespace
}  // namespace mrs::telemetry
