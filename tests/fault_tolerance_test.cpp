// Tests for stragglers, speculative execution and node-failure handling.
#include <gtest/gtest.h>

#include "mrs/mapreduce/failure_injector.hpp"
#include "mrs/net/link_condition.hpp"
#include "mrs/sched/fifo.hpp"
#include "mrs/sim/trace.hpp"
#include "mrs/telemetry/registry.hpp"
#include "test_harness.hpp"

namespace mrs::mapreduce {
namespace {

using mrs::testing::MiniCluster;

// MiniCluster with a link-condition model wired into the network service,
// so tests can cut links out-of-band and watch the stall machinery react.
struct ChaosCluster {
  explicit ChaosCluster(std::size_t nodes, mapreduce::EngineConfig engine_cfg)
      : topo(net::make_single_rack(nodes, units::Gbps(1))),
        cond(&topo, {}, Rng(21)),  // clean background; faults added by hand
        store(nodes),
        placer(&topo, Rng(7)),
        clstr(&topo, {}, Rng(8)),
        network(&sim, &topo, &cond),
        distance(topo),
        engine(&sim, &clstr, &store, &network, &distance, engine_cfg) {}

  JobRun& submit_job(std::size_t maps, std::size_t reduces, Bytes block) {
    JobSpec spec;
    spec.name = "job" + std::to_string(counter);
    spec.reduce_count = reduces;
    spec.map_selectivity = 1.0;
    spec.selectivity_jitter = 0.0;
    spec.map_rate = 32.0 * units::kMiB;
    spec.reduce_rate = 32.0 * units::kMiB;
    spec.task_startup = 0.5;
    for (std::size_t j = 0; j < maps; ++j) {
      const BlockId b = store.add_block(
          block, placer.place(2, dfs::PlacementPolicy::kHdfsDefault));
      spec.map_tasks.push_back({b, block});
    }
    return engine.submit(std::move(spec), Rng(100 + counter++));
  }

  void set_link_fault(LinkId link, bool faulted) {
    cond.set_link_fault(link, faulted);
    network.on_condition_changed();
  }

  sim::Simulation sim;
  net::Topology topo;
  net::LinkConditionModel cond;
  dfs::BlockStore store;
  dfs::BlockPlacer placer;
  cluster::Cluster clstr;
  sim::NetworkService network;
  net::HopDistanceProvider distance;
  mapreduce::Engine engine;
  int counter = 0;
};

TEST(StallRetry, CutTransferTimesOutRetriesAndCompletes) {
  // Cut every link for a window much longer than the stall timeout: any
  // in-flight fetch or shuffle parks at rate zero, the watchdog kills the
  // attempt after `stall_timeout`, and the capped-backoff retry machinery
  // re-places it. Once the links repair, every job must still finish.
  EngineConfig cfg;
  cfg.stall_timeout = 3.0;
  cfg.stall_backoff_base = 1.0;
  cfg.stall_backoff_cap = 4.0;
  ChaosCluster h(4, cfg);
  h.submit_job(16, 4, 256.0 * units::kMiB);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  telemetry::Registry registry;
  h.engine.set_telemetry(&registry);
  sim::MemoryTraceSink trace;
  h.engine.set_trace_sink(&trace);
  h.engine.start();
  h.sim.schedule_at(1.0, [&] {
    for (std::size_t l = 0; l < h.topo.link_count(); ++l) {
      h.set_link_fault(LinkId(l), true);
    }
  });
  h.sim.schedule_at(40.0, [&] {
    for (std::size_t l = 0; l < h.topo.link_count(); ++l) {
      h.set_link_fault(LinkId(l), false);
    }
  });
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_EQ(h.clstr.busy_map_slots(), 0u);
  EXPECT_EQ(h.clstr.busy_reduce_slots(), 0u);
  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counter("engine.transfer.stall_timeouts"), 0u);
  EXPECT_GT(snap.counter("engine.transfer.retries"), 0u);
  // Every stall kill is traced, and every kill eventually produced a retry
  // (nothing hit the attempt cap: max_task_attempts defaults to 0).
  EXPECT_EQ(trace.count(sim::TraceEventKind::kStallTimeout),
            snap.counter("engine.transfer.stall_timeouts"));
  EXPECT_EQ(snap.counter("engine.transfer.retries"),
            snap.counter("engine.transfer.stall_timeouts"));
}

TEST(StallRetry, RepeatedStallKillsFeedBlacklistProbation) {
  // Stall kills count as node failures: two kills inside the window list
  // the node, listing starts a probation that keeps it unschedulable, and
  // the probation must end (and the node return to service) once the
  // network heals — even when later stall kills restart the window.
  EngineConfig cfg;
  cfg.stall_timeout = 3.0;
  cfg.stall_backoff_base = 1.0;
  cfg.stall_backoff_cap = 4.0;
  cfg.blacklist.enabled = true;
  cfg.blacklist.failure_threshold = 2;
  cfg.blacklist.window = 600.0;
  cfg.blacklist.probation = 10.0;
  ChaosCluster h(4, cfg);
  h.submit_job(16, 4, 256.0 * units::kMiB);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  sim::MemoryTraceSink trace;
  h.engine.set_trace_sink(&trace);
  h.engine.start();
  h.sim.schedule_at(1.0, [&] {
    for (std::size_t l = 0; l < h.topo.link_count(); ++l) {
      h.set_link_fault(LinkId(l), true);
    }
  });
  h.sim.schedule_at(40.0, [&] {
    for (std::size_t l = 0; l < h.topo.link_count(); ++l) {
      h.set_link_fault(LinkId(l), false);
    }
  });
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_GE(trace.count(sim::TraceEventKind::kStallTimeout), 2u);
  EXPECT_GE(trace.count(sim::TraceEventKind::kNodeBlacklisted), 1u);
  // Every listed node served out its probation and rejoined: the run ends
  // with the whole cluster schedulable again.
  EXPECT_EQ(trace.count(sim::TraceEventKind::kNodeUnblacklisted),
            trace.count(sim::TraceEventKind::kNodeBlacklisted));
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_TRUE(h.clstr.node(NodeId(n)).schedulable) << "node " << n;
  }
}

TEST(FailNode, RunningMapsRescheduled) {
  MiniCluster h(4);
  JobRun& job = h.submit_job(8, 2);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  // Let some maps start, then kill node 0 mid-run.
  h.sim.schedule_at(2.0, [&] { h.engine.fail_node(NodeId(0)); });
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_EQ(h.engine.failures_injected(), 1u);
  // Every task completed despite the failure; no slot leaked.
  EXPECT_EQ(h.clstr.busy_map_slots(), 0u);
  EXPECT_EQ(h.clstr.busy_reduce_slots(), 0u);
  // Nothing finished on the dead node after the failure.
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    const auto& m = job.map_state(j);
    if (m.node == NodeId(0)) {
      EXPECT_LE(m.finished_at, 2.0 + 1e-9);
    }
  }
}

TEST(FailNode, CompletedOutputsReRun) {
  MiniCluster h(4);
  JobRun& job = h.submit_job(6, 2);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  // Run until all maps finished, then fail a node that hosts outputs while
  // reduces are still shuffling or unassigned.
  bool failed = false;
  std::function<void()> watch = [&] {
    if (!failed && job.maps_finished() == job.map_count() &&
        job.reduces_finished() < job.reduce_count()) {
      // Fail the node where map 0 ran (its output may still be needed).
      const NodeId victim = job.map_state(0).node;
      if (h.clstr.node(victim).busy_map_slots == 0) {
        // Only fail once all its map slots are free (outputs-only case).
        h.engine.fail_node(victim);
        failed = true;
        return;
      }
    }
    if (!h.engine.all_jobs_complete()) h.sim.schedule_in(0.5, watch);
  };
  h.sim.schedule_at(0.5, watch);
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  // Byte conservation still holds after any re-runs.
  for (std::size_t f = 0; f < job.reduce_count(); ++f) {
    double expected = 0.0;
    for (std::size_t j = 0; j < job.map_count(); ++j) {
      expected += job.final_partition(j, f);
    }
    EXPECT_NEAR(job.reduce_state(f).bytes_fetched, expected,
                expected * 1e-9 + 1.0);
  }
}

TEST(FailNode, ReducesRescheduledAndRefetch) {
  MiniCluster h(4);
  JobRun& job = h.submit_job(6, 3);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  // Fail whichever node runs reduce 0, once it is shuffling.
  std::function<void()> watch = [&] {
    const auto& r = job.reduce_state(0);
    if (r.phase == ReducePhase::kShuffling ||
        r.phase == ReducePhase::kComputing) {
      h.engine.fail_node(r.node);
      return;
    }
    if (!h.engine.all_jobs_complete()) h.sim.schedule_in(0.5, watch);
  };
  h.sim.schedule_at(0.5, watch);
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_GE(job.reduce_state(0).attempts, 2u);
  double expected = 0.0;
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    expected += job.final_partition(j, 0);
  }
  EXPECT_NEAR(job.reduce_state(0).bytes_fetched, expected,
              expected * 1e-9 + 1.0);
}

TEST(FailNode, DeadNodeGetsNoWork) {
  MiniCluster h(3);
  JobRun& job = h.submit_job(12, 2);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  h.sim.schedule_at(1.0, [&] { h.engine.fail_node(NodeId(1)); });
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    const auto& m = job.map_state(j);
    if (m.node == NodeId(1)) {
      EXPECT_LE(m.assigned_at, 1.0 + 1e-9);  // assigned before the failure
    }
  }
}

TEST(FailNode, RecoveryRestoresSlots) {
  MiniCluster h(3);
  JobRun& job = h.submit_job(20, 2);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  h.sim.schedule_at(1.0, [&] { h.engine.fail_node(NodeId(2)); });
  h.sim.schedule_at(20.0, [&] { h.engine.recover_node(NodeId(2)); });
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  // Work was assigned to node 2 again after recovery.
  bool post_recovery_use = false;
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    const auto& m = job.map_state(j);
    if (m.node == NodeId(2) && m.assigned_at > 20.0) {
      post_recovery_use = true;
    }
  }
  EXPECT_TRUE(post_recovery_use);
}

TEST(FailNode, DoubleFailureIsNoop) {
  MiniCluster h(3);
  h.submit_job(6, 2);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  h.sim.schedule_at(1.0, [&] {
    h.engine.fail_node(NodeId(0));
    h.engine.fail_node(NodeId(0));  // second call must be harmless
  });
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_EQ(h.engine.failures_injected(), 1u);
}

TEST(Stragglers, SlowdownAppearsInDurations) {
  mapreduce::EngineConfig cfg;
  cfg.fault.straggler_probability = 0.5;
  cfg.fault.straggler_slowdown = 8.0;
  MiniCluster h(4, {}, cfg);
  JobRun& job = h.submit_job(30, 2);
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  std::size_t stragglers = 0;
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    if (job.map_state(j).straggler) ++stragglers;
  }
  EXPECT_GT(stragglers, 5u);
  EXPECT_LT(stragglers, 25u);
}

TEST(Speculation, BackupCutsStragglersShort) {
  auto run_with = [](bool speculate) {
    mapreduce::EngineConfig cfg;
    cfg.fault.straggler_probability = 0.15;
    cfg.fault.straggler_slowdown = 10.0;
    cfg.fault.speculative_execution = speculate;
    cfg.fault.speculation_slack = 1.5;
    MiniCluster h(6, {}, cfg);
    h.submit_job(40, 2);
    sched::FifoScheduler fifo;
    h.run(fifo);
    EXPECT_TRUE(h.engine.all_jobs_complete());
    return std::pair<Seconds, std::size_t>(
        h.engine.job_records().front().completion_time(),
        h.engine.speculative_attempts());
  };
  const auto [jct_off, spec_off] = run_with(false);
  const auto [jct_on, spec_on] = run_with(true);
  EXPECT_EQ(spec_off, 0u);
  EXPECT_GT(spec_on, 0u);
  EXPECT_LT(jct_on, jct_off);  // speculation shortens the straggler tail
}

TEST(Speculation, AttemptsRecorded) {
  mapreduce::EngineConfig cfg;
  cfg.fault.straggler_probability = 0.3;
  cfg.fault.straggler_slowdown = 10.0;
  cfg.fault.speculative_execution = true;
  cfg.fault.speculation_slack = 1.5;
  MiniCluster h(6, {}, cfg);
  h.submit_job(30, 2);
  sched::FifoScheduler fifo;
  h.run(fifo);
  bool multi_attempt = false;
  for (const auto& t : h.engine.task_records()) {
    if (t.attempts > 1) multi_attempt = true;
  }
  EXPECT_TRUE(multi_attempt);
}

TEST(Stragglers, ReduceStragglersSlowCompletion) {
  // Reduce-side stragglers are off by default; with them on, near-certain
  // slowdown draws on every reduce must stretch the makespan.
  auto run_with = [](bool reduce_stragglers) {
    mapreduce::EngineConfig cfg;
    cfg.fault.straggler_probability = 0.9;
    cfg.fault.straggler_slowdown = 8.0;
    cfg.fault.reduce_stragglers = reduce_stragglers;
    MiniCluster h(4, {}, cfg);
    h.submit_job(8, 6);
    sched::FifoScheduler fifo;
    h.run(fifo);
    EXPECT_TRUE(h.engine.all_jobs_complete());
    return h.engine.job_records().front().completion_time();
  };
  EXPECT_GT(run_with(true), run_with(false));
}

TEST(Speculation, CapZeroDisablesBackups) {
  mapreduce::EngineConfig cfg;
  cfg.fault.straggler_probability = 0.3;
  cfg.fault.straggler_slowdown = 10.0;
  cfg.fault.speculative_execution = true;
  cfg.fault.speculation_slack = 1.5;
  cfg.fault.speculation_cap = 0.0;  // speculation on, but no backup budget
  MiniCluster h(6, {}, cfg);
  h.submit_job(30, 2);
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_EQ(h.engine.speculative_attempts(), 0u);
}

TEST(Speculation, ActiveBackupsRespectCap) {
  // cap * map_count = 0.025 * 40 = 1: at most one backup may be in flight
  // per job at any instant, however many stragglers are eligible.
  mapreduce::EngineConfig cfg;
  cfg.fault.straggler_probability = 0.4;
  cfg.fault.straggler_slowdown = 10.0;
  cfg.fault.speculative_execution = true;
  cfg.fault.speculation_slack = 1.2;
  cfg.fault.speculation_cap = 0.025;
  MiniCluster h(6, {}, cfg);
  JobRun& job = h.submit_job(40, 2);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  std::size_t max_active = 0;
  std::function<void()> watch = [&] {
    std::size_t active = 0;
    for (std::size_t j = 0; j < job.map_count(); ++j) {
      if (job.map_state(j).backup.active) ++active;
    }
    max_active = std::max(max_active, active);
    if (!h.engine.all_jobs_complete()) h.sim.schedule_in(0.1, watch);
  };
  h.sim.schedule_at(0.1, watch);
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_GT(h.engine.speculative_attempts(), 0u);  // the cap was exercised
  EXPECT_LE(max_active, 1u);
}

TEST(FailureInjector, RandomFailuresStillComplete) {
  MiniCluster h(6);
  JobRun& job = h.submit_job(30, 6);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  FailureInjectorConfig fcfg;
  fcfg.cluster_mtbf = 15.0;  // aggressive: a failure every ~15 s
  fcfg.repair_time = 30.0;
  FailureInjector injector(&h.sim, &h.engine, &h.clstr, fcfg, Rng(9));
  h.engine.start();
  injector.start();
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_GT(injector.failures_fired(), 0u);
  // Conservation still holds.
  for (std::size_t f = 0; f < job.reduce_count(); ++f) {
    double expected = 0.0;
    for (std::size_t j = 0; j < job.map_count(); ++j) {
      expected += job.final_partition(j, f);
    }
    EXPECT_NEAR(job.reduce_state(f).bytes_fetched, expected,
                expected * 1e-9 + 1.0);
  }
}

TEST(FailureInjector, DisabledByDefault) {
  MiniCluster h(3);
  h.submit_job(4, 1);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  FailureInjector injector(&h.sim, &h.engine, &h.clstr, {}, Rng(1));
  h.engine.start();
  injector.start();
  h.sim.run(1e6);
  EXPECT_EQ(injector.failures_fired(), 0u);
  EXPECT_TRUE(h.engine.all_jobs_complete());
}

TEST(FailureInjector, ArmHorizonKeepsFiringThroughQuietGaps) {
  // Regression: the injector used to disarm permanently the moment every
  // job in the system had resolved — with an open-loop stream that means
  // the first quiet gap, leaving the rest of the run failure-free. The
  // arm_horizon keeps it armed over the whole arrival window.
  auto fired_with_horizon = [](Seconds horizon) {
    MiniCluster h(6);
    h.submit_job(4, 1);  // finishes in a few seconds
    sched::FifoScheduler fifo;
    h.engine.set_scheduler(&fifo);
    FailureInjectorConfig fcfg;
    fcfg.cluster_mtbf = 20.0;
    fcfg.repair_time = 10.0;
    fcfg.arm_horizon = horizon;
    FailureInjector injector(&h.sim, &h.engine, &h.clstr, fcfg, Rng(9));
    h.engine.start();
    injector.start();
    h.sim.run(1e6);
    EXPECT_TRUE(h.engine.all_jobs_complete());
    return injector.failures_fired();
  };
  const std::size_t batch = fired_with_horizon(0.0);
  const std::size_t streaming = fired_with_horizon(300.0);
  // Armed across the ~300 s quiet tail, the injector keeps firing at
  // mtbf 20 long after the only job completed.
  EXPECT_GT(streaming, batch);
  EXPECT_GE(streaming, 5u);
}

TEST(FailureInjector, RepairJitterIsDeterministicPerSeed) {
  auto run_once = [](double jitter) {
    MiniCluster h(5);
    h.submit_job(60, 6);
    sched::FifoScheduler fifo;
    h.engine.set_scheduler(&fifo);
    FailureInjectorConfig fcfg;
    // Aggressive failures with quick repairs: recovered nodes rejoin while
    // plenty of work remains, so the jittered repair times shift later
    // assignments (and the extra jitter draw shifts later failure times).
    fcfg.cluster_mtbf = 8.0;
    fcfg.repair_time = 5.0;
    fcfg.repair_jitter = jitter;
    FailureInjector injector(&h.sim, &h.engine, &h.clstr, fcfg, Rng(4));
    h.engine.start();
    injector.start();
    h.sim.run(1e6);
    EXPECT_TRUE(h.engine.all_jobs_complete());
    std::vector<double> t;
    for (const auto& r : h.engine.task_records()) t.push_back(r.finished_at);
    return t;
  };
  // Same seed + same jitter -> byte-identical schedule.
  EXPECT_EQ(run_once(0.5), run_once(0.5));
  // Jitter draws perturb the repair times, so the schedule moves.
  EXPECT_NE(run_once(0.5), run_once(0.0));
}

TEST(FailureInjector, DeterministicWithFailures) {
  auto run_once = [] {
    MiniCluster h(5);
    h.submit_job(20, 4);
    sched::FifoScheduler fifo;
    h.engine.set_scheduler(&fifo);
    FailureInjectorConfig fcfg;
    fcfg.cluster_mtbf = 20.0;
    FailureInjector injector(&h.sim, &h.engine, &h.clstr, fcfg, Rng(4));
    h.engine.start();
    injector.start();
    h.sim.run(1e6);
    std::vector<double> t;
    for (const auto& r : h.engine.task_records()) t.push_back(r.finished_at);
    return t;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mrs::mapreduce
