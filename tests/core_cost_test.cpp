// Tests for the transmission-cost machinery (Eq. 1-3): the paper's worked
// example (Fig. 2), the intermediate-data snapshot/estimator and the
// aggregated reduce-cost evaluator.
#include <gtest/gtest.h>

#include "mrs/core/cost_model.hpp"
#include "mrs/dfs/block_store.hpp"
#include "mrs/mapreduce/engine.hpp"
#include "mrs/net/distance.hpp"
#include "mrs/sim/network_service.hpp"
#include "mrs/sim/simulation.hpp"

namespace mrs::core {
namespace {

using mapreduce::Engine;
using mapreduce::EngineConfig;
using mapreduce::JobRun;
using mapreduce::JobSpec;
using mapreduce::MapPhase;

// The distance matrix of the paper's Fig. 2 example: nodes D1..D4 map to
// NodeId 0..3. Known entries: d(D3,D1)=2, d(D3,D2)=10, d(D3,D4)=6,
// d(D2,D1)=4. Unspecified pairs get arbitrary values.
net::DistanceMatrix fig2_matrix() {
  net::DistanceMatrix m(4);
  m.set_symmetric(NodeId(2), NodeId(0), 2.0);
  m.set_symmetric(NodeId(2), NodeId(1), 10.0);
  m.set_symmetric(NodeId(2), NodeId(3), 6.0);
  m.set_symmetric(NodeId(1), NodeId(0), 4.0);
  m.set_symmetric(NodeId(0), NodeId(3), 8.0);
  m.set_symmetric(NodeId(1), NodeId(3), 12.0);
  return m;
}

EngineConfig provider_cost_config() {
  EngineConfig cfg;
  // Route map costs through the custom matrix, not topology hops.
  cfg.map_cost_source = EngineConfig::MapCostSource::kProvider;
  return cfg;
}

struct Fig2Harness {
  Fig2Harness()
      : topo(net::make_single_rack(4)),
        store(4),
        clstr(&topo, {}, Rng(1)),
        network(&sim, &topo),
        distance(fig2_matrix()),
        engine(&sim, &clstr, &store, &network, &distance,
               provider_cost_config()) {}

  sim::Simulation sim;
  net::Topology topo;
  dfs::BlockStore store;
  cluster::Cluster clstr;
  sim::NetworkService network;
  net::HopDistanceProvider distance;
  Engine engine;
};

TEST(Fig2Example, MapCostsMatchPaper) {
  Fig2Harness h;
  // M1's 128 MB block is on D1 (node 0); M2's on D2 (node 1).
  JobSpec spec;
  spec.name = "fig2";
  spec.reduce_count = 2;
  spec.map_tasks.push_back(
      {h.store.add_block(128.0, {NodeId(0)}), 128.0});
  spec.map_tasks.push_back(
      {h.store.add_block(128.0, {NodeId(1)}), 128.0});
  JobRun& job = h.engine.submit(std::move(spec), Rng(2));

  // "the transmission cost for M1 [on D3] is 128 x 2 = 256 and the cost
  // for M2 [on D2] is 128 x 0 = 0"
  EXPECT_DOUBLE_EQ(h.engine.map_cost(job, 0, NodeId(2)), 256.0);
  EXPECT_DOUBLE_EQ(h.engine.map_cost(job, 1, NodeId(1)), 0.0);
  // And the rest of the example's D3/D1 rows.
  EXPECT_DOUBLE_EQ(h.engine.map_cost(job, 0, NodeId(0)), 0.0);
  EXPECT_DOUBLE_EQ(h.engine.map_cost(job, 0, NodeId(1)), 128.0 * 4.0);
  EXPECT_DOUBLE_EQ(h.engine.map_cost(job, 0, NodeId(3)), 128.0 * 8.0);
}

TEST(Fig2Example, ReduceCostsMatchManualEq2) {
  Fig2Harness h;
  JobSpec spec;
  spec.name = "fig2r";
  spec.reduce_count = 2;
  spec.map_tasks.push_back({h.store.add_block(128.0, {NodeId(0)}), 128.0});
  spec.map_tasks.push_back({h.store.add_block(128.0, {NodeId(1)}), 128.0});
  JobRun& job = h.engine.submit(std::move(spec), Rng(3));

  // Place M1 on D3 (node 2) and M2 on D2 (node 1), both complete — the
  // paper's assignment.
  job.map_state(0).phase = MapPhase::kDone;
  job.map_state(0).node = NodeId(2);
  job.map_state(1).phase = MapPhase::kDone;
  job.map_state(1).node = NodeId(1);

  const std::vector<NodeId> candidates = {NodeId(0), NodeId(2)};
  ReduceCostEvaluator eval(h.engine, job, EstimatorMode::kOracle, candidates);

  const net::DistanceMatrix m = fig2_matrix();
  const auto manual = [&](NodeId i, std::size_t f) {
    // C_r(i,f) = I_0f * d(D3, i) + I_1f * d(D2, i)
    return job.final_partition(0, f) * m.at(NodeId(2), i) +
           job.final_partition(1, f) * m.at(NodeId(1), i);
  };
  EXPECT_NEAR(eval.cost(0, 0), manual(NodeId(0), 0), 1e-9);
  EXPECT_NEAR(eval.cost(0, 1), manual(NodeId(0), 1), 1e-9);
  EXPECT_NEAR(eval.cost(1, 0), manual(NodeId(2), 0), 1e-9);
  EXPECT_NEAR(eval.cost(1, 1), manual(NodeId(2), 1), 1e-9);
  // With the paper's exact I (M1: 10,5; M2: 20,10 MB) the example totals
  // 200; our I is drawn stochastically so we verify the formula and the
  // row-mean identity instead of the constant.
  EXPECT_NEAR(eval.average_cost(0), (eval.cost(0, 0) + eval.cost(1, 0)) / 2,
              1e-9);
}

// ---------------------------------------------------------------------------
// IntermediateSnapshot / estimator behaviour on a synthetic JobRun.
// ---------------------------------------------------------------------------

JobSpec snapshot_spec(double nonlinearity) {
  JobSpec spec;
  spec.name = "snap";
  spec.reduce_count = 3;
  spec.map_selectivity = 1.0;
  spec.selectivity_jitter = 0.0;
  spec.emit_nonlinearity = nonlinearity;
  for (std::size_t j = 0; j < 4; ++j) {
    spec.map_tasks.push_back({BlockId(j), 100.0});
  }
  return spec;
}

void place_and_run(JobRun& job, std::size_t j, NodeId node, double progress) {
  auto& m = job.map_state(j);
  m.node = node;
  if (progress >= 1.0) {
    m.phase = MapPhase::kDone;
  } else if (progress > 0.0) {
    m.phase = MapPhase::kComputing;
    m.compute_start = 0.0;
    m.compute_duration = 1.0 / progress;  // reaches `progress` at t=1
  } else {
    m.phase = MapPhase::kStartup;
  }
}

TEST(IntermediateSnapshot, ProjectedIsExactForLinearEmitters) {
  JobRun job(snapshot_spec(1.0), 4, Rng(5));
  place_and_run(job, 0, NodeId(0), 1.0);   // done
  place_and_run(job, 1, NodeId(1), 0.5);   // half way
  place_and_run(job, 2, NodeId(1), 0.1);   // just started
  place_and_run(job, 3, NodeId(2), 0.0);   // no progress yet

  IntermediateSnapshot snap(job, 1.0, EstimatorMode::kProjected, 4);
  for (std::size_t f = 0; f < 3; ++f) {
    // Maps 0-2 are projected exactly; map 3 contributes nothing.
    const double expected = job.final_partition(0, f) +
                            job.final_partition(1, f) +
                            job.final_partition(2, f);
    const double got = snap.bytes_from(0, f) + snap.bytes_from(1, f) +
                       snap.bytes_from(2, f);
    EXPECT_NEAR(got, expected, 1e-6);
    EXPECT_DOUBLE_EQ(snap.bytes_from(2, f) + snap.bytes_from(3, f),
                     snap.bytes_from(2, f));  // node 3 empty
  }
  EXPECT_EQ(snap.source_nodes(), (std::vector<std::size_t>{0, 1}));
}

TEST(IntermediateSnapshot, CurrentUnderestimatesRunningMaps) {
  JobRun job(snapshot_spec(1.0), 4, Rng(6));
  place_and_run(job, 0, NodeId(0), 0.25);
  place_and_run(job, 1, NodeId(1), 1.0);
  place_and_run(job, 2, NodeId(2), 0.0);
  place_and_run(job, 3, NodeId(3), 0.0);

  IntermediateSnapshot cur(job, 1.0, EstimatorMode::kCurrent, 4);
  IntermediateSnapshot proj(job, 1.0, EstimatorMode::kProjected, 4);
  for (std::size_t f = 0; f < 3; ++f) {
    // Current sees only 25% of map 0's output; projected sees all of it.
    EXPECT_NEAR(cur.bytes_from(0, f), 0.25 * job.final_partition(0, f),
                1e-9);
    EXPECT_NEAR(proj.bytes_from(0, f), job.final_partition(0, f), 1e-9);
    // Completed maps identical under both.
    EXPECT_NEAR(cur.bytes_from(1, f), proj.bytes_from(1, f), 1e-9);
  }
}

TEST(IntermediateSnapshot, ProjectedBiasUnderNonlinearEmission) {
  // With alpha=2 the ramp lags progress, so Eq. 3 underestimates while the
  // map runs: estimate = I * p^(alpha-1).
  JobRun job(snapshot_spec(2.0), 4, Rng(7));
  place_and_run(job, 0, NodeId(0), 0.5);
  place_and_run(job, 1, NodeId(1), 0.0);
  place_and_run(job, 2, NodeId(2), 0.0);
  place_and_run(job, 3, NodeId(3), 0.0);
  IntermediateSnapshot proj(job, 1.0, EstimatorMode::kProjected, 4);
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_NEAR(proj.bytes_from(0, f), 0.5 * job.final_partition(0, f),
                1e-9);
  }
}

TEST(IntermediateSnapshot, OracleSeesPlacedUnstartedMaps) {
  JobRun job(snapshot_spec(1.0), 4, Rng(8));
  place_and_run(job, 0, NodeId(0), 0.0);  // placed but idle
  place_and_run(job, 1, NodeId(0), 0.0);
  place_and_run(job, 2, NodeId(1), 0.0);
  place_and_run(job, 3, NodeId(1), 0.0);
  IntermediateSnapshot oracle(job, 0.0, EstimatorMode::kOracle, 4);
  IntermediateSnapshot proj(job, 0.0, EstimatorMode::kProjected, 4);
  EXPECT_GT(oracle.total_for(0), 0.0);
  EXPECT_DOUBLE_EQ(proj.total_for(0), 0.0);  // nothing reported yet
}

TEST(IntermediateSnapshot, UnassignedMapsInvisible) {
  JobRun job(snapshot_spec(1.0), 4, Rng(9));
  // No map placed at all: every mode sees an empty cluster.
  for (auto mode : {EstimatorMode::kProjected, EstimatorMode::kCurrent,
                    EstimatorMode::kOracle}) {
    IntermediateSnapshot snap(job, 0.0, mode, 4);
    EXPECT_TRUE(snap.source_nodes().empty());
    EXPECT_DOUBLE_EQ(snap.total_for(0), 0.0);
  }
}

TEST(IntermediateSnapshot, TotalsSumSources) {
  JobRun job(snapshot_spec(1.0), 4, Rng(10));
  for (std::size_t j = 0; j < 4; ++j) {
    place_and_run(job, j, NodeId(j % 2), 1.0);
  }
  IntermediateSnapshot snap(job, 1.0, EstimatorMode::kProjected, 4);
  for (std::size_t f = 0; f < 3; ++f) {
    double sum = 0.0;
    for (std::size_t p = 0; p < 4; ++p) sum += snap.bytes_from(p, f);
    EXPECT_NEAR(snap.total_for(f), sum, 1e-9);
  }
}

TEST(ReduceCostEvaluator, ZeroCostOnDataNodeInSingleSourceCase) {
  Fig2Harness h;
  JobSpec spec = snapshot_spec(1.0);
  JobRun& job = h.engine.submit(
      [&] {
        JobSpec s = snapshot_spec(1.0);
        for (auto& mt : s.map_tasks) {
          mt.block = h.store.add_block(100.0, {NodeId(0)});
        }
        return s;
      }(),
      Rng(11));
  (void)spec;
  // All maps completed on node 0: a reduce placed there has cost 0.
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    job.map_state(j).phase = MapPhase::kDone;
    job.map_state(j).node = NodeId(0);
  }
  const std::vector<NodeId> candidates = {NodeId(0), NodeId(1), NodeId(2)};
  ReduceCostEvaluator eval(h.engine, job, EstimatorMode::kOracle, candidates);
  for (std::size_t f = 0; f < job.reduce_count(); ++f) {
    EXPECT_DOUBLE_EQ(eval.cost(0, f), 0.0);
    EXPECT_GT(eval.cost(1, f), 0.0);
    EXPECT_GT(eval.average_cost(f), 0.0);
  }
}

}  // namespace
}  // namespace mrs::core
