// Property tests: the flow model under randomized traffic must conserve
// bytes, never oversubscribe a link, and always drain.
#include <gtest/gtest.h>

#include <algorithm>

#include "mrs/common/rng.hpp"
#include "mrs/net/flow.hpp"
#include "mrs/net/topology.hpp"

namespace mrs::net {
namespace {

constexpr double kGb = 1e9 / 8.0;

class RandomTrafficProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomTrafficProperty, ConservesBytesAndDrains) {
  Rng rng(GetParam());
  TreeTopologyConfig cfg;
  cfg.racks = 3;
  cfg.hosts_per_rack = 4;
  cfg.host_link = units::Gbps(1);
  cfg.uplink = units::Gbps(4);
  const Topology topo = make_multi_rack_tree(cfg);
  FlowModel fm(&topo);

  // Random arrivals: 60 flows with random endpoints/sizes/caps over 30 s.
  Bytes total_offered = 0.0;
  Seconds now = 0.0;
  std::size_t started = 0;
  while (started < 60 || fm.active_count() > 0) {
    // Interleave arrivals and completions in time order.
    const Seconds next_arrival =
        started < 60 ? now + rng.uniform(0.0, 0.5) : 1e18;
    const auto completion = fm.next_completion();
    const Seconds next_completion =
        completion ? completion->first : 1e18;

    if (next_arrival <= next_completion) {
      now = next_arrival;
      fm.advance_to(now);
      const NodeId src(rng.index(topo.host_count()));
      NodeId dst(rng.index(topo.host_count()));
      if (dst == src) dst = NodeId((src.value() + 1) % topo.host_count());
      const Bytes size = rng.uniform(0.01, 2.0) * kGb;
      const BytesPerSec cap =
          rng.bernoulli(0.4) ? rng.uniform(0.05, 0.5) * kGb : 1e18;
      fm.start(src, dst, size, now, cap);
      total_offered += size;
      ++started;

      // Invariant at every arrival: no directed link oversubscribed, every
      // active flow within its cap.
      for (std::size_t d = 0; d < topo.link_count() * 2; ++d) {
        const double capacity = topo.link(LinkId(d / 2)).capacity;
        EXPECT_LE(fm.directed_link_load(d), capacity * 1.0001);
      }
    } else {
      now = next_completion;
      fm.advance_to(now + 1e-9);
      fm.collect_completed();
    }
    ASSERT_LT(now, 1e6) << "traffic failed to drain";
  }
  EXPECT_NEAR(fm.bytes_delivered(), total_offered, total_offered * 1e-9 + 60);
}

TEST_P(RandomTrafficProperty, RateNeverExceedsCap) {
  Rng rng(GetParam() + 1000);
  const Topology topo = make_single_rack(6, units::Gbps(1));
  FlowModel fm(&topo);
  std::vector<std::pair<FlowId, BytesPerSec>> caps;
  for (int i = 0; i < 20; ++i) {
    const NodeId src(rng.index(6));
    NodeId dst(rng.index(6));
    if (dst == src) dst = NodeId((src.value() + 1) % 6);
    const BytesPerSec cap = rng.uniform(0.05, 1.5) * kGb;
    caps.emplace_back(fm.start(src, dst, 100.0 * kGb, 0.0, cap), cap);
  }
  for (const auto& [id, cap] : caps) {
    EXPECT_LE(fm.info(id).rate, cap * 1.0001);
  }
}

// The progressive-filling invariants, checked at every arrival of a random
// stream: (a) per-link frozen-rate sums never exceed capacity beyond 1e-9
// relative error (the exact-residual last freeze removes the old
// subtraction-drift leak); (b) the maintained O(1) aggregates equal a
// from-scratch audit bitwise; (c) max-min optimality — every flow is either
// at its application cap or bottlenecked on some saturated link where it
// gets a maximal share.
TEST_P(RandomTrafficProperty, FrozenSumsAndMaxMinOptimality) {
  Rng rng(GetParam() + 2000);
  TreeTopologyConfig cfg;
  cfg.racks = 3;
  cfg.hosts_per_rack = 4;
  cfg.host_link = units::Gbps(1);
  cfg.uplink = units::Gbps(4);
  const Topology topo = make_multi_rack_tree(cfg);
  FlowModel fm(&topo);
  const std::size_t directed = topo.link_count() * 2;

  std::vector<FlowId> live;
  Seconds now = 0.0;
  for (std::size_t event = 0; event < 120; ++event) {
    if (live.size() > 40 || (!live.empty() && rng.bernoulli(0.3))) {
      const auto next = fm.next_completion();
      ASSERT_TRUE(next.has_value());
      now = next->first + 1e-9;
      fm.advance_to(now);
      for (const FlowId id : fm.collect_completed()) {
        live.erase(std::find(live.begin(), live.end(), id));
      }
    } else {
      now += rng.uniform(0.0, 0.2);
      const NodeId src(rng.index(topo.host_count()));
      NodeId dst(rng.index(topo.host_count()));
      if (dst == src) dst = NodeId((src.value() + 1) % topo.host_count());
      const BytesPerSec cap =
          rng.bernoulli(0.4) ? rng.uniform(0.02, 0.5) * kGb : 1e18;
      live.push_back(
          fm.start(src, dst, rng.uniform(0.05, 2.0) * kGb, now, cap));
    }

    // (a) + (b): frozen-rate sums vs capacity, maintained vs audited.
    std::vector<double> audit(directed, 0.0);
    for (const FlowId id : live) {
      const FlowInfo& f = fm.info(id);
      if (!f.active) continue;
      for (const DirectedLink& dl : topo.path(f.src, f.dst)) {
        audit[dl.directed_index()] += f.rate;
      }
    }
    for (std::size_t d = 0; d < directed; ++d) {
      const double capacity = topo.link(LinkId(d / 2)).capacity;
      EXPECT_LE(audit[d], capacity * (1.0 + 1e-9)) << "link " << d;
      // `live` ascends by flow id, so the audit accumulates in the solver's
      // canonical member order: the sums must match bit-for-bit.
      EXPECT_EQ(fm.directed_link_load(d), audit[d]) << "link " << d;
    }

    // (c) max-min optimality: each flow is capped, or crosses a saturated
    // link on which no other flow holds a strictly larger share.
    for (const FlowId id : live) {
      const FlowInfo& f = fm.info(id);
      if (!f.active) continue;
      if (f.rate >= f.rate_cap * (1.0 - 1e-9)) continue;  // at its cap
      bool bottlenecked = false;
      for (const DirectedLink& dl : topo.path(f.src, f.dst)) {
        const std::size_t d = dl.directed_index();
        const double capacity = topo.link(LinkId(d / 2)).capacity;
        if (audit[d] < capacity * (1.0 - 1e-9)) continue;  // not saturated
        double max_rate = 0.0;
        for (const FlowId other : live) {
          const FlowInfo& g = fm.info(other);
          if (!g.active) continue;
          for (const DirectedLink& odl : topo.path(g.src, g.dst)) {
            if (odl.directed_index() == d) {
              max_rate = std::max(max_rate, g.rate);
              break;
            }
          }
        }
        if (f.rate >= max_rate * (1.0 - 1e-9)) {
          bottlenecked = true;
          break;
        }
      }
      EXPECT_TRUE(bottlenecked)
          << "flow " << id.value() << " rate " << f.rate
          << " is neither capped nor bottlenecked (not max-min optimal)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTrafficProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace mrs::net
