// Property tests: the flow model under randomized traffic must conserve
// bytes, never oversubscribe a link, and always drain.
#include <gtest/gtest.h>

#include "mrs/common/rng.hpp"
#include "mrs/net/flow.hpp"
#include "mrs/net/topology.hpp"

namespace mrs::net {
namespace {

constexpr double kGb = 1e9 / 8.0;

class RandomTrafficProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomTrafficProperty, ConservesBytesAndDrains) {
  Rng rng(GetParam());
  TreeTopologyConfig cfg;
  cfg.racks = 3;
  cfg.hosts_per_rack = 4;
  cfg.host_link = units::Gbps(1);
  cfg.uplink = units::Gbps(4);
  const Topology topo = make_multi_rack_tree(cfg);
  FlowModel fm(&topo);

  // Random arrivals: 60 flows with random endpoints/sizes/caps over 30 s.
  Bytes total_offered = 0.0;
  Seconds now = 0.0;
  std::size_t started = 0;
  while (started < 60 || fm.active_count() > 0) {
    // Interleave arrivals and completions in time order.
    const Seconds next_arrival =
        started < 60 ? now + rng.uniform(0.0, 0.5) : 1e18;
    const auto completion = fm.next_completion();
    const Seconds next_completion =
        completion ? completion->first : 1e18;

    if (next_arrival <= next_completion) {
      now = next_arrival;
      fm.advance_to(now);
      const NodeId src(rng.index(topo.host_count()));
      NodeId dst(rng.index(topo.host_count()));
      if (dst == src) dst = NodeId((src.value() + 1) % topo.host_count());
      const Bytes size = rng.uniform(0.01, 2.0) * kGb;
      const BytesPerSec cap =
          rng.bernoulli(0.4) ? rng.uniform(0.05, 0.5) * kGb : 1e18;
      fm.start(src, dst, size, now, cap);
      total_offered += size;
      ++started;

      // Invariant at every arrival: no directed link oversubscribed, every
      // active flow within its cap.
      for (std::size_t d = 0; d < topo.link_count() * 2; ++d) {
        const double capacity = topo.link(LinkId(d / 2)).capacity;
        EXPECT_LE(fm.directed_link_load(d), capacity * 1.0001);
      }
    } else {
      now = next_completion;
      fm.advance_to(now + 1e-9);
      fm.collect_completed();
    }
    ASSERT_LT(now, 1e6) << "traffic failed to drain";
  }
  EXPECT_NEAR(fm.bytes_delivered(), total_offered, total_offered * 1e-9 + 60);
}

TEST_P(RandomTrafficProperty, RateNeverExceedsCap) {
  Rng rng(GetParam() + 1000);
  const Topology topo = make_single_rack(6, units::Gbps(1));
  FlowModel fm(&topo);
  std::vector<std::pair<FlowId, BytesPerSec>> caps;
  for (int i = 0; i < 20; ++i) {
    const NodeId src(rng.index(6));
    NodeId dst(rng.index(6));
    if (dst == src) dst = NodeId((src.value() + 1) % 6);
    const BytesPerSec cap = rng.uniform(0.05, 1.5) * kGb;
    caps.emplace_back(fm.start(src, dst, 100.0 * kGb, 0.0, cap), cap);
  }
  for (const auto& [id, cap] : caps) {
    EXPECT_LE(fm.info(id).rate, cap * 1.0001);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTrafficProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace mrs::net
