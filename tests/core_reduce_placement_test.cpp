// Reduce-placement quality tests for Algorithm 2: when intermediate data
// is concentrated, the probabilistic scheduler must steer reduces toward
// the data (the behaviour Eq. 2/3 exists to produce).
#include <gtest/gtest.h>

#include "mrs/core/pna_scheduler.hpp"
#include "mrs/sched/fair.hpp"
#include "test_harness.hpp"

namespace mrs::core {
namespace {

using mapreduce::EngineConfig;
using mapreduce::JobRun;
using mapreduce::JobSpec;
using mrs::testing::MiniCluster;

// A job whose blocks (and therefore maps, and therefore intermediate
// data) live entirely on the `hot` nodes of the cluster.
JobRun& submit_concentrated_job(MiniCluster& h, std::size_t maps,
                                std::size_t reduces,
                                std::vector<NodeId> hot) {
  JobSpec spec;
  spec.name = "hotspot";
  spec.reduce_count = reduces;
  spec.selectivity_jitter = 0.0;
  spec.task_startup = 0.5;
  Rng pick(17);
  for (std::size_t j = 0; j < maps; ++j) {
    const NodeId a = hot[pick.index(hot.size())];
    NodeId b = hot[pick.index(hot.size())];
    if (b == a) b = hot[(0 < hot.size() - 1 && hot[0] == a) ? 1 : 0];
    std::vector<NodeId> replicas = {a};
    if (b != a) replicas.push_back(b);
    const BlockId blk = h.store.add_block(64.0 * units::kMiB, replicas);
    spec.map_tasks.push_back({blk, 64.0 * units::kMiB});
  }
  return h.engine.submit(std::move(spec), Rng(18));
}

TEST(ReducePlacement, PnaPullsReducesTowardData) {
  // 8 nodes; all map data on nodes {0,1,2}. The co-location ban caps the
  // job at one *concurrent* reduce per node, so with ~8 reduces running at
  // once the hot fraction is ceilinged at 3/8 = 0.375 — PNA should sit at
  // that ceiling, not below it (a blind scheduler hits ~0.375 only in
  // expectation, with variance on both sides).
  auto hot_fraction = [](bool use_pna) {
    EngineConfig ecfg;
    ecfg.reduce_slowstart = 0.6;  // decide with plenty of data visible
    MiniCluster h(8, {}, ecfg);
    JobRun& job = submit_concentrated_job(h, 24, 8,
                                          {NodeId(0), NodeId(1), NodeId(2)});
    std::size_t hot = 0;
    if (use_pna) {
      PnaScheduler pna({}, Rng(19));
      h.run(pna);
    } else {
      sched::FairScheduler fair({}, Rng(19));
      h.run(fair);
    }
    EXPECT_TRUE(job.complete());
    for (std::size_t f = 0; f < job.reduce_count(); ++f) {
      if (job.reduce_state(f).node.value() <= 2) ++hot;
    }
    return double(hot) / double(job.reduce_count());
  };
  const double pna = hot_fraction(true);
  const double fair = hot_fraction(false);
  EXPECT_GE(pna, 0.375 - 1e-9);  // at the co-location-ban ceiling
  EXPECT_GE(pna, fair - 0.2);    // never meaningfully worse than random
}

TEST(ReducePlacement, RealizedCostBeatsRandom) {
  // The quantity Algorithm 2 minimises — realized reduce transmission
  // cost — must be lower under PNA than under Fair's random placement on
  // the concentrated workload, for several seeds.
  double pna_cost = 0.0, fair_cost = 0.0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const bool use_pna : {true, false}) {
      EngineConfig ecfg;
      ecfg.reduce_slowstart = 0.6;
      MiniCluster h(8, {}, ecfg, seed);
      JobRun& job = submit_concentrated_job(
          h, 24, 8, {NodeId(0), NodeId(1), NodeId(2)});
      if (use_pna) {
        PnaScheduler pna({}, Rng(seed));
        h.run(pna);
      } else {
        sched::FairScheduler fair({}, Rng(seed));
        h.run(fair);
      }
      double cost = 0.0;
      for (std::size_t f = 0; f < job.reduce_count(); ++f) {
        cost += job.reduce_state(f).placement_cost;
      }
      (use_pna ? pna_cost : fair_cost) += cost;
    }
  }
  EXPECT_LT(pna_cost, fair_cost);
}

TEST(ReducePlacement, OracleEstimatorNoWorseThanCurrent) {
  // With a strongly back-loaded emitter (alpha = 3), current-size
  // estimates at decision time are most misleading; the oracle bound must
  // achieve at most the current-size realized cost (statistically).
  auto cost_with = [](EstimatorMode mode) {
    double total = 0.0;
    for (std::uint64_t seed : {4ull, 5ull, 6ull}) {
      EngineConfig ecfg;
      ecfg.reduce_slowstart = 0.1;  // early decisions, little data visible
      MiniCluster h(8, {}, ecfg, seed);
      JobSpec spec;
      spec.name = "backloaded";
      spec.reduce_count = 8;
      spec.selectivity_jitter = 0.0;
      spec.emit_nonlinearity = 3.0;
      spec.task_startup = 0.5;
      Rng pick(seed);
      for (int j = 0; j < 24; ++j) {
        const BlockId blk = h.store.add_block(
            64.0 * units::kMiB,
            h.placer.place(2, dfs::PlacementPolicy::kHdfsDefault));
        spec.map_tasks.push_back({blk, 64.0 * units::kMiB});
      }
      JobRun& job = h.engine.submit(std::move(spec), Rng(seed + 50));
      PnaConfig cfg;
      cfg.estimator = mode;
      PnaScheduler pna(cfg, Rng(seed + 100));
      h.run(pna);
      EXPECT_TRUE(job.complete());
      for (std::size_t f = 0; f < job.reduce_count(); ++f) {
        total += job.reduce_state(f).placement_cost;
      }
    }
    return total;
  };
  const double oracle = cost_with(EstimatorMode::kOracle);
  const double current = cost_with(EstimatorMode::kCurrent);
  EXPECT_LE(oracle, current * 1.05);  // oracle is the bound (5% noise)
}

TEST(ReducePlacement, NoColocationEvenWhenDataConcentrated) {
  // The Algorithm 2 Line-1 ban must hold even when every reduce wants the
  // same few data-rich nodes.
  EngineConfig ecfg;
  ecfg.reduce_slowstart = 0.6;
  MiniCluster h(8, {}, ecfg);
  JobRun& job = submit_concentrated_job(h, 16, 6, {NodeId(0)});
  struct Watcher final : mapreduce::TaskScheduler {
    PnaScheduler* inner;
    JobRun* job;
    bool violated = false;
    const char* name() const override { return "watch"; }
    void on_heartbeat(mapreduce::Engine& e, NodeId node) override {
      inner->on_heartbeat(e, node);
      std::vector<int> running(e.cluster().node_count(), 0);
      for (std::size_t f = 0; f < job->reduce_count(); ++f) {
        const auto& r = job->reduce_state(f);
        if (r.phase != mapreduce::ReducePhase::kUnassigned &&
            r.phase != mapreduce::ReducePhase::kDone) {
          if (++running[r.node.value()] > 1) violated = true;
        }
      }
    }
  } w;
  PnaScheduler pna({}, Rng(20));
  w.inner = &pna;
  w.job = &job;
  h.run(w);
  EXPECT_TRUE(job.complete());
  EXPECT_FALSE(w.violated);
}

}  // namespace
}  // namespace mrs::core
