// Integration tests on a multi-rack topology: locality classes beyond the
// single-rack pair, cross-rack transfer accounting, and scheduler behaviour
// when remote (off-rack) placements exist.
#include <gtest/gtest.h>

#include "mrs/core/pna_scheduler.hpp"
#include "mrs/dfs/block_store.hpp"
#include "mrs/mapreduce/engine.hpp"
#include "mrs/net/distance.hpp"
#include "mrs/sched/fair.hpp"
#include "mrs/sched/fifo.hpp"
#include "mrs/sim/network_service.hpp"
#include "mrs/sim/simulation.hpp"

namespace mrs::mapreduce {
namespace {

struct MultiRackHarness {
  explicit MultiRackHarness(std::size_t racks, std::size_t per_rack)
      : topo(make_topo(racks, per_rack)),
        store(topo.host_count()),
        placer(&topo, Rng(3)),
        clstr(&topo, {}, Rng(4)),
        network(&sim, &topo),
        distance(topo),
        engine(&sim, &clstr, &store, &network, &distance, {}) {}

  static net::Topology make_topo(std::size_t racks, std::size_t per_rack) {
    net::TreeTopologyConfig cfg;
    cfg.racks = racks;
    cfg.hosts_per_rack = per_rack;
    return net::make_multi_rack_tree(cfg);
  }

  JobRun& submit_job(std::size_t maps, std::size_t reduces) {
    JobSpec spec;
    spec.name = "mr-job";
    spec.reduce_count = reduces;
    spec.selectivity_jitter = 0.0;
    spec.task_startup = 0.5;
    for (std::size_t j = 0; j < maps; ++j) {
      const BlockId b = store.add_block(
          64.0 * units::kMiB,
          placer.place(2, dfs::PlacementPolicy::kHdfsDefault));
      spec.map_tasks.push_back({b, 64.0 * units::kMiB});
    }
    return engine.submit(std::move(spec), Rng(11));
  }

  void run(TaskScheduler& sched) {
    engine.set_scheduler(&sched);
    engine.start();
    sim.run(1e6);
  }

  sim::Simulation sim;
  net::Topology topo;
  dfs::BlockStore store;
  dfs::BlockPlacer placer;
  cluster::Cluster clstr;
  sim::NetworkService network;
  net::HopDistanceProvider distance;
  Engine engine;
};

TEST(MultiRack, LocalityClassesMatchTopology) {
  MultiRackHarness h(3, 4);
  JobRun& job = h.submit_job(24, 4);
  sched::FifoScheduler fifo;
  h.run(fifo);
  ASSERT_TRUE(h.engine.all_jobs_complete());
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    const auto& m = job.map_state(j);
    const auto& replicas = h.store.replicas(job.spec().map_tasks[j].block);
    bool on_replica = false, same_rack = false;
    for (NodeId r : replicas) {
      if (r == m.node) on_replica = true;
      if (h.topo.same_rack(r, m.node)) same_rack = true;
    }
    if (on_replica) {
      EXPECT_EQ(m.locality, Locality::kNodeLocal);
    } else if (same_rack) {
      EXPECT_EQ(m.locality, Locality::kRackLocal);
    } else {
      EXPECT_EQ(m.locality, Locality::kRemote);
    }
  }
}

TEST(MultiRack, MapCostReflectsHopClasses) {
  MultiRackHarness h(2, 3);
  JobRun& job = h.submit_job(4, 2);
  // For every (task, node), cost must be B * {0, 2, or 4}.
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    for (std::size_t n = 0; n < h.topo.host_count(); ++n) {
      const double cost = h.engine.map_cost(job, j, NodeId(n));
      const double per_byte = cost / (64.0 * units::kMiB);
      EXPECT_TRUE(per_byte == 0.0 || per_byte == 2.0 || per_byte == 4.0)
          << "unexpected distance " << per_byte;
    }
  }
}

TEST(MultiRack, PnaPrefersNearerRack) {
  // All replicas in rack 0; PNA's cost model must place clearly more maps
  // in rack 0 than in the farthest rack when slots are plentiful.
  MultiRackHarness h(2, 6);
  JobSpec spec;
  spec.name = "rack-pinned";
  spec.reduce_count = 2;
  spec.selectivity_jitter = 0.0;
  spec.task_startup = 0.5;
  Rng pick(5);
  for (int j = 0; j < 18; ++j) {
    // Replicas on two distinct rack-0 nodes (hosts 0..5).
    const NodeId a(pick.index(6));
    const NodeId b((a.value() + 1 + pick.index(5)) % 6);
    const BlockId blk =
        h.store.add_block(64.0 * units::kMiB, {a, b});
    spec.map_tasks.push_back({blk, 64.0 * units::kMiB});
  }
  JobRun& job = h.engine.submit(std::move(spec), Rng(12));
  core::PnaScheduler pna({}, Rng(6));
  h.run(pna);
  ASSERT_TRUE(job.complete());
  std::size_t in_rack0 = 0;
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    if (h.topo.rack_of(job.map_state(j).node) == RackId(0)) ++in_rack0;
  }
  EXPECT_GT(in_rack0, job.map_count() * 2 / 3);
}

TEST(MultiRack, CrossRackBytesAccounted) {
  MultiRackHarness h(2, 3);
  JobRun& job = h.submit_job(8, 3);
  sched::FairScheduler fair({}, Rng(7));
  h.run(fair);
  ASSERT_TRUE(h.engine.all_jobs_complete());
  // Reduce network bytes = everything not sourced on the reduce's node.
  for (const auto& t : h.engine.task_records()) {
    if (t.is_map) continue;
    double expected = 0.0;
    for (std::size_t j = 0; j < job.map_count(); ++j) {
      if (job.map_state(j).node != t.node) {
        expected += job.final_partition(j, t.index);
      }
    }
    EXPECT_NEAR(t.network_bytes, expected, expected * 1e-9 + 1.0);
  }
}

TEST(MultiRack, FairDelayEscalatesThroughRackLevel) {
  MultiRackHarness h(2, 2);
  JobRun& job = h.submit_job(12, 2);
  sched::FairScheduler fair({.node_local_delay = 1.0,
                             .rack_local_delay = 1.0},
                            Rng(8));
  h.run(fair);
  EXPECT_TRUE(job.complete());
}

}  // namespace
}  // namespace mrs::mapreduce
