// Integration tests for the JobTracker engine: full small-cluster runs with
// lifecycle, accounting and conservation invariants.
#include <gtest/gtest.h>

#include <memory>

#include "mrs/dfs/block_store.hpp"
#include "mrs/mapreduce/engine.hpp"
#include "mrs/mapreduce/job_policy.hpp"
#include "mrs/net/distance.hpp"
#include "mrs/sched/fifo.hpp"
#include "mrs/sim/network_service.hpp"
#include "mrs/sim/simulation.hpp"

namespace mrs::mapreduce {
namespace {

// A minimal self-contained harness around the engine.
struct Harness {
  explicit Harness(std::size_t nodes, cluster::NodeConfig node_cfg = {},
                   EngineConfig engine_cfg = {})
      : topo(net::make_single_rack(nodes, units::Gbps(1))),
        store(nodes),
        placer(&topo, Rng(7)),
        clstr(&topo, node_cfg, Rng(8)),
        network(&sim, &topo),
        distance(topo),
        engine(&sim, &clstr, &store, &network, &distance, engine_cfg) {}

  JobRun& submit_job(std::size_t maps, std::size_t reduces,
                     Bytes block = 64.0 * units::kMiB,
                     double selectivity = 1.0) {
    JobSpec spec;
    spec.name = "job" + std::to_string(counter++);
    spec.reduce_count = reduces;
    spec.map_selectivity = selectivity;
    spec.selectivity_jitter = 0.0;
    spec.map_rate = 32.0 * units::kMiB;
    spec.reduce_rate = 32.0 * units::kMiB;
    spec.task_startup = 0.5;
    for (std::size_t j = 0; j < maps; ++j) {
      const BlockId b = store.add_block(
          block, placer.place(2, dfs::PlacementPolicy::kHdfsDefault));
      spec.map_tasks.push_back({b, block});
    }
    return engine.submit(std::move(spec), Rng(100 + counter));
  }

  void run(TaskScheduler& sched, Seconds max_time = 1e6) {
    engine.set_scheduler(&sched);
    engine.start();
    sim.run(max_time);
  }

  sim::Simulation sim;
  net::Topology topo;
  dfs::BlockStore store;
  dfs::BlockPlacer placer;
  cluster::Cluster clstr;
  sim::NetworkService network;
  net::HopDistanceProvider distance;
  Engine engine;
  int counter = 0;
};

TEST(Engine, SingleJobCompletes) {
  Harness h(4);
  JobRun& job = h.submit_job(6, 3);
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_TRUE(job.complete());
  EXPECT_GT(job.finish_time, 0.0);
}

TEST(Engine, RecordsOnePerTask) {
  Harness h(4);
  h.submit_job(6, 3);
  h.submit_job(4, 2);
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_EQ(h.engine.task_records().size(), 6u + 3u + 4u + 2u);
  EXPECT_EQ(h.engine.job_records().size(), 2u);
  std::size_t maps = 0, reduces = 0;
  for (const auto& t : h.engine.task_records()) {
    (t.is_map ? maps : reduces)++;
    EXPECT_GE(t.finished_at, t.assigned_at);
    EXPECT_TRUE(t.node.valid());
  }
  EXPECT_EQ(maps, 10u);
  EXPECT_EQ(reduces, 5u);
}

TEST(Engine, AllSlotsReleasedAtEnd) {
  Harness h(3);
  h.submit_job(8, 4);
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_EQ(h.clstr.busy_map_slots(), 0u);
  EXPECT_EQ(h.clstr.busy_reduce_slots(), 0u);
}

TEST(Engine, ShuffleByteConservation) {
  Harness h(4);
  JobRun& job = h.submit_job(5, 3, 64.0 * units::kMiB, 1.5);
  sched::FifoScheduler fifo;
  h.run(fifo);
  for (std::size_t f = 0; f < job.reduce_count(); ++f) {
    double expected = 0.0;
    for (std::size_t j = 0; j < job.map_count(); ++j) {
      expected += job.final_partition(j, f);
    }
    EXPECT_NEAR(job.reduce_state(f).bytes_fetched, expected,
                expected * 1e-9 + 1.0);
    EXPECT_EQ(job.reduce_state(f).fetched_maps, job.map_count());
  }
}

TEST(Engine, MapLocalityClassification) {
  Harness h(4);
  JobRun& job = h.submit_job(3, 1);
  sched::FifoScheduler fifo;
  h.run(fifo);
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    const auto& m = job.map_state(j);
    const bool is_replica = h.store.is_replica(
        m.node, job.spec().map_tasks[j].block);
    if (is_replica) {
      EXPECT_EQ(m.locality, Locality::kNodeLocal);
      EXPECT_DOUBLE_EQ(m.placement_cost, 0.0);
    } else {
      EXPECT_EQ(m.locality, Locality::kRackLocal);  // single rack
      EXPECT_GT(m.placement_cost, 0.0);
    }
  }
}

TEST(Engine, MapCostMatchesEq1) {
  Harness h(5);
  JobRun& job = h.submit_job(4, 1, 100.0);
  // Before running: verify Eq. 1 against a manual computation.
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t n = 0; n < 5; ++n) {
      double best = 1e300;
      for (NodeId r : h.store.replicas(job.spec().map_tasks[j].block)) {
        best = std::min(best, double(h.topo.hops(NodeId(n), r)));
      }
      EXPECT_DOUBLE_EQ(h.engine.map_cost(job, j, NodeId(n)), 100.0 * best);
    }
  }
}

TEST(Engine, ReduceGateRespectsSlowstart) {
  EngineConfig cfg;
  cfg.reduce_slowstart = 0.5;
  Harness h(3, {}, cfg);
  JobRun& job = h.submit_job(10, 2);
  EXPECT_FALSE(h.engine.reduce_gate_open(job));
  for (int i = 0; i < 5; ++i) job.note_map_finished();
  EXPECT_TRUE(h.engine.reduce_gate_open(job));
}

TEST(Engine, UtilizationPositiveAndBounded) {
  Harness h(3);
  h.submit_job(12, 4);
  sched::FifoScheduler fifo;
  h.run(fifo);
  const auto u = h.engine.utilization();
  EXPECT_GT(u.span, 0.0);
  EXPECT_GT(u.map_utilization(), 0.0);
  EXPECT_LE(u.map_utilization(), 1.0);
  EXPECT_GT(u.reduce_utilization(), 0.0);
  EXPECT_LE(u.reduce_utilization(), 1.0);
}

TEST(Engine, StaggeredSubmissionTimes) {
  Harness h(4);
  JobRun& early = h.submit_job(3, 1);
  JobRun& late = h.submit_job(3, 1);
  late.submit_time = 50.0;
  sched::FifoScheduler fifo;
  h.run(fifo);
  EXPECT_GE(late.first_task_start, 50.0);
  EXPECT_LT(early.first_task_start, 10.0);
  EXPECT_TRUE(h.engine.all_jobs_complete());
}

TEST(Engine, HeartbeatBudgetEnforced) {
  // A scheduler that tries to over-assign must trip the budget check; we
  // verify the engine exposes a correct countdown instead of crashing by
  // assigning exactly the budget.
  struct GreedyOne final : TaskScheduler {
    const char* name() const override { return "greedy1"; }
    void on_heartbeat(Engine& e, NodeId node) override {
      EXPECT_LE(e.map_budget_left(), 1u);
      auto jobs = jobs_for_maps(e, JobOrder::kFifo);
      if (!jobs.empty() && e.map_budget_left() > 0 &&
          e.cluster().node(node).free_map_slots() > 0) {
        const std::size_t j = jobs[0]->next_any_map();
        if (j < jobs[0]->map_count()) {
          e.assign_map(*jobs[0], j, node);
          EXPECT_EQ(e.map_budget_left(), 0u);
        }
      }
      auto rjobs = jobs_for_reduces(e, JobOrder::kFifo);
      if (!rjobs.empty() && e.reduce_budget_left() > 0 &&
          e.cluster().node(node).free_reduce_slots() > 0) {
        const auto un = rjobs[0]->unassigned_reduces();
        if (!un.empty()) e.assign_reduce(*rjobs[0], un.front(), node);
      }
    }
  };
  Harness h(3);
  h.submit_job(9, 3);
  GreedyOne sched;
  h.run(sched);
  EXPECT_TRUE(h.engine.all_jobs_complete());
}

TEST(Engine, RemoteMapMovesBytes) {
  // Force remote maps by assigning every map to a non-replica node.
  struct RemoteOnly final : TaskScheduler {
    const dfs::BlockStore* store;
    const char* name() const override { return "remote"; }
    void on_heartbeat(Engine& e, NodeId node) override {
      auto jobs = jobs_for_maps(e, JobOrder::kFifo);
      if (jobs.empty()) {
        auto rjobs = jobs_for_reduces(e, JobOrder::kFifo);
        if (!rjobs.empty() && e.reduce_budget_left() > 0 &&
            e.cluster().node(node).free_reduce_slots() > 0) {
          const auto un = rjobs[0]->unassigned_reduces();
          if (!un.empty()) e.assign_reduce(*rjobs[0], un.front(), node);
        }
        return;
      }
      if (e.map_budget_left() == 0 ||
          e.cluster().node(node).free_map_slots() == 0) {
        return;
      }
      for (std::size_t j : jobs[0]->unassigned_maps()) {
        if (!store->is_replica(node, jobs[0]->spec().map_tasks[j].block)) {
          e.assign_map(*jobs[0], j, node);
          return;
        }
      }
    }
  };
  Harness h(6);
  JobRun& job = h.submit_job(4, 1, 32.0 * units::kMiB);
  RemoteOnly sched;
  sched.store = &h.store;
  h.run(sched);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  Bytes remote_bytes = 0.0;
  for (const auto& t : h.engine.task_records()) {
    if (t.is_map) {
      EXPECT_NE(t.locality, Locality::kNodeLocal);
      remote_bytes += t.network_bytes;
    }
  }
  EXPECT_NEAR(remote_bytes, 4.0 * 32.0 * units::kMiB, 1.0);
  (void)job;
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Harness h(4);
    h.submit_job(8, 3);
    sched::FifoScheduler fifo;
    h.run(fifo);
    std::vector<double> times;
    for (const auto& t : h.engine.task_records()) {
      times.push_back(t.finished_at);
    }
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, ReduceLocalityAtAssignment) {
  Harness h(3);
  JobRun& job = h.submit_job(6, 2);
  sched::FifoScheduler fifo;
  h.run(fifo);
  // With single rack, reduces are node-local or rack-local, never remote
  // (slowstart guarantees at least one completed map at assignment).
  for (std::size_t f = 0; f < job.reduce_count(); ++f) {
    EXPECT_NE(job.reduce_state(f).locality, Locality::kRemote);
  }
}

}  // namespace
}  // namespace mrs::mapreduce
