// Tests for the control plane: admission policies, the deferral budget,
// node blacklisting, and their integration with the engine.
#include <gtest/gtest.h>

#include <cmath>

#include "mrs/control/admission.hpp"
#include "mrs/control/blacklist.hpp"
#include "mrs/sched/fifo.hpp"
#include "test_harness.hpp"

namespace mrs::control {
namespace {

using mrs::testing::MiniCluster;

AdmissionObservables obs_at(Seconds now, std::size_t jobs_in_system) {
  AdmissionObservables obs;
  obs.now = now;
  obs.jobs_in_system = jobs_in_system;
  return obs;
}

TEST(Admission, AlwaysAdmitNeverDefers) {
  AdmissionController ctl({});
  for (std::size_t j = 0; j < 10; ++j) {
    const auto d = ctl.on_arrival(JobId(j), 0.0, 0, obs_at(0.0, 100));
    EXPECT_EQ(d.action, AdmissionAction::kAdmit);
  }
  EXPECT_EQ(ctl.jobs_admitted(), 10u);
  EXPECT_EQ(ctl.jobs_rejected(), 0u);
  EXPECT_EQ(ctl.deferrals_issued(), 0u);
  for (const auto& o : ctl.outcomes()) {
    EXPECT_TRUE(o.resolved);
    EXPECT_TRUE(o.admitted);
    EXPECT_EQ(o.deferrals, 0u);
  }
}

TEST(Admission, StaticThresholdDefersAtLimit) {
  AdmissionConfig cfg;
  cfg.policy = AdmissionPolicyKind::kStaticThreshold;
  cfg.max_jobs_in_system = 3.0;
  AdmissionController ctl(cfg);
  EXPECT_EQ(ctl.on_arrival(JobId(0), 0.0, 0, obs_at(0.0, 2)).action,
            AdmissionAction::kAdmit);
  EXPECT_EQ(ctl.on_arrival(JobId(1), 0.0, 0, obs_at(0.0, 3)).action,
            AdmissionAction::kDefer);
  EXPECT_EQ(ctl.deferral_queue_depth(), 1u);
}

TEST(Admission, TenantQuotaLimitIsWeightedShare) {
  AdmissionConfig cfg;
  cfg.max_jobs_in_system = 24.0;
  cfg.tenant_quota_weights = {3.0, 1.0};
  const AdmissionController ctl(cfg);
  EXPECT_DOUBLE_EQ(ctl.tenant_quota_limit(TenantId(0)), 18.0);  // 24 * 3/4
  EXPECT_DOUBLE_EQ(ctl.tenant_quota_limit(TenantId(1)), 6.0);   // 24 * 1/4
  // Tenants beyond the table share as if weight 1 (never over budget).
  EXPECT_DOUBLE_EQ(ctl.tenant_quota_limit(TenantId(9)), 6.0);

  const AdmissionController off({});
  EXPECT_TRUE(std::isinf(off.tenant_quota_limit(TenantId(0))));
}

TEST(Admission, TenantQuotaGateDefersOverBudgetTenant) {
  // Always-admit policy + quotas: the gate alone must defer a tenant at
  // its weighted share even though the cluster-wide policy says admit,
  // and must leave the under-budget tenant untouched.
  AdmissionConfig cfg;
  cfg.max_jobs_in_system = 8.0;
  cfg.tenant_quota_weights = {3.0, 1.0};  // limits: 6 and 2 jobs
  AdmissionController ctl(cfg);
  auto tenant_obs = [](Seconds now, std::size_t tenant,
                       std::size_t tenant_jobs) {
    AdmissionObservables obs;
    obs.now = now;
    obs.tenant = TenantId(tenant);
    obs.jobs_in_system = tenant_jobs;  // aggregate L irrelevant here
    obs.tenant_jobs_in_system = tenant_jobs;
    return obs;
  };
  // Tenant 1 at its limit of 2: deferred despite always-admit.
  EXPECT_EQ(ctl.on_arrival(JobId(0), 0.0, 0, tenant_obs(0.0, 1, 2)).action,
            AdmissionAction::kDefer);
  // Tenant 1 under its limit: admitted.
  EXPECT_EQ(ctl.on_arrival(JobId(1), 0.0, 0, tenant_obs(0.0, 1, 1)).action,
            AdmissionAction::kAdmit);
  // Tenant 0 holding 5 < 6: admitted even while tenant 1 is gated.
  EXPECT_EQ(ctl.on_arrival(JobId(2), 0.0, 0, tenant_obs(0.0, 0, 5)).action,
            AdmissionAction::kAdmit);
  EXPECT_EQ(ctl.on_arrival(JobId(3), 0.0, 0, tenant_obs(0.0, 0, 6)).action,
            AdmissionAction::kDefer);
  // The ledger records the gated arrivals' tenants.
  EXPECT_EQ(ctl.outcomes()[0].tenant, TenantId(1));
  EXPECT_EQ(ctl.outcomes()[3].tenant, TenantId(0));
}

TEST(Admission, TenantQuotaGateFeedsDeferralBudget) {
  // A persistently over-quota tenant runs through the normal deferral
  // machinery and is hard-rejected once the budget is spent.
  AdmissionConfig cfg;
  cfg.max_jobs_in_system = 4.0;
  cfg.tenant_quota_weights = {1.0, 1.0};  // 2 jobs each
  cfg.deferral.max_deferrals = 2;
  AdmissionController ctl(cfg);
  AdmissionObservables obs;
  obs.tenant = TenantId(0);
  obs.tenant_jobs_in_system = 2;
  EXPECT_EQ(ctl.on_arrival(JobId(0), 0.0, 0, obs).action,
            AdmissionAction::kDefer);
  EXPECT_EQ(ctl.on_arrival(JobId(0), 0.0, 1, obs).action,
            AdmissionAction::kDefer);
  EXPECT_EQ(ctl.on_arrival(JobId(0), 0.0, 2, obs).action,
            AdmissionAction::kReject);
  EXPECT_EQ(ctl.jobs_rejected(), 1u);
  EXPECT_TRUE(ctl.outcomes()[0].resolved);
  EXPECT_FALSE(ctl.outcomes()[0].admitted);
}

TEST(Admission, QuotaConfigValidation) {
  AdmissionConfig bad_weight;
  bad_weight.tenant_quota_weights = {1.0, 0.0};
  EXPECT_DEATH(AdmissionController{bad_weight}, "");
  AdmissionConfig no_budget;
  no_budget.max_jobs_in_system = 0.0;
  no_budget.tenant_quota_weights = {1.0};
  EXPECT_DEATH(AdmissionController{no_budget}, "max_jobs_in_system");
}

TEST(Admission, BackoffDoublesThenRejects) {
  // Defer every attempt: backoffs 15, 30, 60, 120, then the budget of 4
  // deferrals is spent and the fifth decision is a hard reject.
  AdmissionConfig cfg;
  cfg.policy = AdmissionPolicyKind::kStaticThreshold;
  cfg.max_jobs_in_system = 1.0;
  AdmissionController ctl(cfg);
  const Seconds expected[] = {15.0, 30.0, 60.0, 120.0};
  Seconds now = 0.0;
  for (std::size_t attempt = 0; attempt < 4; ++attempt) {
    const auto d = ctl.on_arrival(JobId(0), 0.0, attempt, obs_at(now, 5));
    ASSERT_EQ(d.action, AdmissionAction::kDefer);
    EXPECT_DOUBLE_EQ(d.retry_in, expected[attempt]);
    EXPECT_EQ(ctl.deferral_queue_depth(), 1u);
    now += d.retry_in;
  }
  const auto final = ctl.on_arrival(JobId(0), 0.0, 4, obs_at(now, 5));
  EXPECT_EQ(final.action, AdmissionAction::kReject);
  EXPECT_EQ(ctl.deferral_queue_depth(), 0u);
  EXPECT_EQ(ctl.jobs_rejected(), 1u);
  EXPECT_EQ(ctl.deferrals_issued(), 4u);
  ASSERT_EQ(ctl.outcomes().size(), 1u);
  const ArrivalOutcome& o = ctl.outcomes().front();
  EXPECT_TRUE(o.resolved);
  EXPECT_FALSE(o.admitted);
  EXPECT_EQ(o.deferrals, 4u);
  EXPECT_DOUBLE_EQ(o.arrival_time, 0.0);
  EXPECT_DOUBLE_EQ(o.decided_time, 15.0 + 30.0 + 60.0 + 120.0);
}

TEST(Admission, BackoffCapsAtMax) {
  AdmissionConfig cfg;
  cfg.policy = AdmissionPolicyKind::kStaticThreshold;
  cfg.max_jobs_in_system = 1.0;
  cfg.deferral.max_deferrals = 8;  // enough room to hit the cap
  AdmissionController ctl(cfg);
  Seconds last = 0.0;
  for (std::size_t attempt = 0; attempt < 8; ++attempt) {
    const auto d = ctl.on_arrival(JobId(0), 0.0, attempt, obs_at(0.0, 5));
    ASSERT_EQ(d.action, AdmissionAction::kDefer);
    EXPECT_LE(d.retry_in, cfg.deferral.max_backoff);
    EXPECT_GE(d.retry_in, last);  // non-decreasing
    last = d.retry_in;
  }
  EXPECT_DOUBLE_EQ(last, cfg.deferral.max_backoff);
}

TEST(Admission, TokenBucketRefillsOverTime) {
  AdmissionConfig cfg;
  cfg.policy = AdmissionPolicyKind::kTokenBucket;
  cfg.bucket_rate_per_hour = 3600.0;  // 1 token / second
  cfg.bucket_capacity = 2.0;
  AdmissionController ctl(cfg);
  // Burst of three at t=0: two tokens, so the third defers.
  EXPECT_EQ(ctl.on_arrival(JobId(0), 0.0, 0, obs_at(0.0, 0)).action,
            AdmissionAction::kAdmit);
  EXPECT_EQ(ctl.on_arrival(JobId(1), 0.0, 0, obs_at(0.0, 1)).action,
            AdmissionAction::kAdmit);
  EXPECT_EQ(ctl.on_arrival(JobId(2), 0.0, 0, obs_at(0.0, 2)).action,
            AdmissionAction::kDefer);
  // After 1.5 s one whole token has accrued: the retry is admitted, and a
  // straggler right behind it is not.
  EXPECT_EQ(ctl.on_arrival(JobId(2), 0.0, 1, obs_at(1.5, 2)).action,
            AdmissionAction::kAdmit);
  EXPECT_EQ(ctl.on_arrival(JobId(3), 1.5, 0, obs_at(1.5, 3)).action,
            AdmissionAction::kDefer);
}

TEST(Admission, AdaptiveLimitMovesWithDelay) {
  AdmissionConfig cfg;
  cfg.policy = AdmissionPolicyKind::kAdaptive;
  cfg.max_jobs_in_system = 4.0;  // initial limit
  cfg.adaptive_target_delay = 10.0;
  cfg.adaptive_min_limit = 2.0;
  cfg.adaptive_max_limit = 8.0;
  cfg.adaptive_step = 0.5;
  cfg.adaptive_decrease = 0.5;
  AdmissionController ctl(cfg);
  EXPECT_DOUBLE_EQ(ctl.backlog_limit(), 4.0);
  // A sample above target halves the limit (multiplicative decrease).
  ctl.note_queueing_delay(20.0);
  EXPECT_DOUBLE_EQ(ctl.backlog_limit(), 2.0);
  // Repeated decreases clamp at the minimum.
  ctl.note_queueing_delay(20.0);
  EXPECT_DOUBLE_EQ(ctl.backlog_limit(), 2.0);
  // Samples below target step the limit back up, clamped at the maximum.
  for (int i = 0; i < 100; ++i) ctl.note_queueing_delay(1.0);
  EXPECT_DOUBLE_EQ(ctl.backlog_limit(), 8.0);
  // The limit is the live admit/defer boundary.
  EXPECT_EQ(ctl.on_arrival(JobId(0), 0.0, 0, obs_at(0.0, 7)).action,
            AdmissionAction::kAdmit);
  EXPECT_EQ(ctl.on_arrival(JobId(1), 0.0, 0, obs_at(0.0, 8)).action,
            AdmissionAction::kDefer);
}

TEST(Admission, DelayEwmaTracksSamples) {
  AdmissionConfig cfg;
  cfg.delay_ewma_alpha = 0.2;
  AdmissionController ctl(cfg);
  EXPECT_DOUBLE_EQ(ctl.queueing_delay_ewma(), 0.0);
  ctl.note_queueing_delay(10.0);  // first sample seeds the EWMA exactly
  EXPECT_DOUBLE_EQ(ctl.queueing_delay_ewma(), 10.0);
  ctl.note_queueing_delay(20.0);
  EXPECT_DOUBLE_EQ(ctl.queueing_delay_ewma(), 0.8 * 10.0 + 0.2 * 20.0);
}

TEST(Admission, LedgerConservation) {
  // Every arrival resolves to exactly one of admitted / rejected, and the
  // ledger covers every distinct job that reached a decision.
  AdmissionConfig cfg;
  cfg.policy = AdmissionPolicyKind::kStaticThreshold;
  cfg.max_jobs_in_system = 2.0;
  cfg.deferral.max_deferrals = 1;
  AdmissionController ctl(cfg);
  std::size_t resolved = 0;
  for (std::size_t j = 0; j < 20; ++j) {
    // Alternate a loaded and an idle system so all three paths are taken.
    const std::size_t backlog = j % 3 == 0 ? 5 : 0;
    auto d = ctl.on_arrival(JobId(j), 0.0, 0, obs_at(0.0, backlog));
    if (d.action == AdmissionAction::kDefer) {
      d = ctl.on_arrival(JobId(j), 0.0, 1, obs_at(15.0, backlog));
    }
    ASSERT_NE(d.action, AdmissionAction::kDefer);  // budget is 1
    ++resolved;
  }
  EXPECT_EQ(ctl.outcomes().size(), 20u);
  EXPECT_EQ(ctl.jobs_admitted() + ctl.jobs_rejected(), resolved);
  EXPECT_EQ(ctl.deferral_queue_depth(), 0u);
}

TEST(Blacklist, DisabledIsNoop) {
  NodeBlacklist bl(4, {});
  bl.note_failure(NodeId(0), 0.0);
  bl.note_failure(NodeId(0), 1.0);
  bl.note_failure(NodeId(0), 2.0);
  EXPECT_FALSE(bl.listed(NodeId(0)));
  std::uint64_t epoch = 0;
  EXPECT_DOUBLE_EQ(bl.start_probation_on_recovery(NodeId(0), &epoch), 0.0);
  EXPECT_EQ(bl.entries(), 0u);
}

TEST(Blacklist, SlidingWindowCountsRecentFailuresOnly) {
  BlacklistConfig cfg;
  cfg.enabled = true;
  cfg.failure_threshold = 2;
  cfg.window = 100.0;
  NodeBlacklist bl(4, cfg);
  bl.note_failure(NodeId(0), 0.0);
  EXPECT_FALSE(bl.listed(NodeId(0)));
  // 200 s later the first failure has aged out: still only one in window.
  bl.note_failure(NodeId(0), 200.0);
  EXPECT_FALSE(bl.listed(NodeId(0)));
  // A second failure inside the window lists the node.
  bl.note_failure(NodeId(0), 250.0);
  EXPECT_TRUE(bl.listed(NodeId(0)));
  EXPECT_EQ(bl.entries(), 1u);
  // Other nodes are untouched.
  EXPECT_FALSE(bl.listed(NodeId(1)));
}

TEST(Blacklist, ProbationEndsOnlyWithMatchingEpoch) {
  BlacklistConfig cfg;
  cfg.enabled = true;
  cfg.failure_threshold = 1;
  cfg.probation = 300.0;
  NodeBlacklist bl(2, cfg);
  bl.note_failure(NodeId(0), 10.0);
  ASSERT_TRUE(bl.listed(NodeId(0)));
  std::uint64_t epoch = 0;
  EXPECT_DOUBLE_EQ(bl.start_probation_on_recovery(NodeId(0), &epoch), 300.0);
  // A failure during probation invalidates the pending timer...
  bl.note_failure(NodeId(0), 100.0);
  EXPECT_FALSE(bl.end_probation(NodeId(0), epoch));  // stale: no-op
  EXPECT_TRUE(bl.listed(NodeId(0)));
  // ...and the next recovery starts a fresh probation that does complete.
  std::uint64_t epoch2 = 0;
  EXPECT_DOUBLE_EQ(bl.start_probation_on_recovery(NodeId(0), &epoch2),
                   300.0);
  EXPECT_NE(epoch2, epoch);
  EXPECT_TRUE(bl.end_probation(NodeId(0), epoch2));
  EXPECT_FALSE(bl.listed(NodeId(0)));
  EXPECT_EQ(bl.exits(), 1u);
}

TEST(ControlEngine, BlacklistedNodeSitsOutProbation) {
  mapreduce::EngineConfig cfg;
  cfg.blacklist.enabled = true;
  cfg.blacklist.failure_threshold = 1;
  cfg.blacklist.probation = 10.0;
  MiniCluster h(3, {}, cfg);
  mapreduce::JobRun& job = h.submit_job(60, 2);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  h.sim.schedule_at(1.0, [&] { h.engine.fail_node(NodeId(1)); });
  h.sim.schedule_at(3.0, [&] { h.engine.recover_node(NodeId(1)); });
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_EQ(h.engine.blacklist().entries(), 1u);
  EXPECT_EQ(h.engine.blacklist().exits(), 1u);
  EXPECT_FALSE(h.engine.blacklist().listed(NodeId(1)));
  // Probation covers (recovery, recovery + 10): the node got no new work
  // in that span even though it was alive, and was reused afterwards.
  bool post_probation_use = false;
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    const auto& m = job.map_state(j);
    if (m.node == NodeId(1)) {
      EXPECT_FALSE(m.assigned_at > 3.0 && m.assigned_at < 13.0 - 1e-9);
      if (m.assigned_at >= 13.0 - 1e-9) post_probation_use = true;
    }
  }
  EXPECT_TRUE(post_probation_use);
}

TEST(ControlEngine, BlacklistDisabledRestoresImmediately) {
  MiniCluster h(3);
  mapreduce::JobRun& job = h.submit_job(60, 2);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  h.sim.schedule_at(1.0, [&] { h.engine.fail_node(NodeId(1)); });
  h.sim.schedule_at(3.0, [&] { h.engine.recover_node(NodeId(1)); });
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_EQ(h.engine.blacklist().entries(), 0u);
  // Without blacklisting the node picks up work right after recovery.
  bool early_reuse = false;
  for (std::size_t j = 0; j < job.map_count(); ++j) {
    const auto& m = job.map_state(j);
    if (m.node == NodeId(1) && m.assigned_at > 3.0 &&
        m.assigned_at < 13.0) {
      early_reuse = true;
    }
  }
  EXPECT_TRUE(early_reuse);
}

TEST(ControlEngine, AttemptCapAbortsJob) {
  mapreduce::EngineConfig cfg;
  cfg.max_task_attempts = 1;  // any killed attempt dooms its job
  MiniCluster h(3, {}, cfg);
  h.submit_job(12, 2);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  h.sim.schedule_at(2.0, [&] { h.engine.fail_node(NodeId(0)); });
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_EQ(h.engine.jobs_aborted(), 1u);
  ASSERT_EQ(h.engine.job_records().size(), 1u);
  const auto& rec = h.engine.job_records().front();
  EXPECT_TRUE(rec.aborted);
  EXPECT_DOUBLE_EQ(rec.finish_time, 2.0);
  // The abort released every slot.
  EXPECT_EQ(h.clstr.busy_map_slots(), 0u);
  EXPECT_EQ(h.clstr.busy_reduce_slots(), 0u);
}

TEST(ControlEngine, UnlimitedAttemptsNeverAbort) {
  mapreduce::EngineConfig cfg;
  cfg.max_task_attempts = 0;  // default: retry forever
  MiniCluster h(3, {}, cfg);
  h.submit_job(12, 2);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.start();
  h.sim.schedule_at(2.0, [&] { h.engine.fail_node(NodeId(0)); });
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_EQ(h.engine.jobs_aborted(), 0u);
  EXPECT_FALSE(h.engine.job_records().front().aborted);
}

TEST(ControlEngine, DeferredJobAdmittedWhenBacklogClears) {
  control::AdmissionConfig acfg;
  acfg.policy = AdmissionPolicyKind::kStaticThreshold;
  acfg.max_jobs_in_system = 1.0;
  AdmissionController ctl(acfg);
  MiniCluster h(3);
  h.submit_job(4, 1);
  mapreduce::JobRun& second = h.submit_job(4, 1);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.set_admission(&ctl);
  h.engine.start();
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  // Both jobs eventually ran; the second waited out at least one backoff.
  EXPECT_EQ(ctl.jobs_admitted(), 2u);
  EXPECT_EQ(ctl.jobs_rejected(), 0u);
  EXPECT_GE(ctl.deferrals_issued(), 1u);
  EXPECT_GE(second.map_state(0).assigned_at, 15.0);
  EXPECT_EQ(h.engine.jobs_rejected(), 0u);
}

TEST(ControlEngine, ExhaustedDeferralsRejectJob) {
  control::AdmissionConfig acfg;
  acfg.policy = AdmissionPolicyKind::kStaticThreshold;
  acfg.max_jobs_in_system = 1.0;
  acfg.deferral.max_deferrals = 1;
  acfg.deferral.initial_backoff = 0.5;  // retries while job 0 still runs
  AdmissionController ctl(acfg);
  MiniCluster h(3);
  h.submit_job(40, 2);  // long enough to outlive the retry budget
  h.submit_job(4, 1);
  sched::FifoScheduler fifo;
  h.engine.set_scheduler(&fifo);
  h.engine.set_admission(&ctl);
  h.engine.start();
  h.sim.run(1e6);
  EXPECT_TRUE(h.engine.all_jobs_complete());
  EXPECT_EQ(h.engine.jobs_rejected(), 1u);
  EXPECT_EQ(ctl.jobs_rejected(), 1u);
  // The rejected job left no job record; the completed one did.
  EXPECT_EQ(h.engine.job_records().size(), 1u);
  EXPECT_FALSE(h.engine.job_records().front().aborted);
}

}  // namespace
}  // namespace mrs::control
