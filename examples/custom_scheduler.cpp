// Implementing your own task scheduler against the public API.
//
// The engine calls TaskScheduler::on_heartbeat whenever a node reports free
// slots; the scheduler inspects jobs/cluster through the Engine facade and
// commits placements with assign_map / assign_reduce. This example builds a
// "power of two choices" scheduler: for each slot it samples two candidate
// tasks and takes the one with the lower transmission cost — a classic
// load-balancing trick the paper's related work alludes to — and races it
// against the built-in probabilistic scheduler.
#include <cstdio>

#include "mrs/core/cost_model.hpp"
#include "mrs/driver/experiment.hpp"
#include "mrs/mapreduce/job_policy.hpp"
#include "mrs/metrics/summary.hpp"

namespace {

using namespace mrs;

class PowerOfTwoScheduler final : public mapreduce::TaskScheduler {
 public:
  explicit PowerOfTwoScheduler(Rng rng) : rng_(std::move(rng)) {}

  const char* name() const override { return "power-of-two"; }

  void on_heartbeat(mapreduce::Engine& engine, NodeId node) override {
    while (engine.map_budget_left() > 0 &&
           engine.cluster().node(node).free_map_slots() > 0) {
      if (!try_map(engine, node)) break;
    }
    while (engine.reduce_budget_left() > 0 &&
           engine.cluster().node(node).free_reduce_slots() > 0) {
      if (!try_reduce(engine, node)) break;
    }
  }

 private:
  bool try_map(mapreduce::Engine& engine, NodeId node) {
    for (auto* job :
         mapreduce::jobs_for_maps(engine, mapreduce::JobOrder::kFair)) {
      // Local task? Take it (cost 0 cannot be beaten).
      const std::size_t local = job->next_local_map(node);
      if (local < job->map_count()) {
        engine.assign_map(*job, local, node);
        return true;
      }
      // Otherwise sample two candidates and take the cheaper (Eq. 1).
      const auto unassigned = job->unassigned_maps();
      if (unassigned.empty()) continue;
      const std::size_t a = unassigned[rng_.index(unassigned.size())];
      const std::size_t b = unassigned[rng_.index(unassigned.size())];
      const std::size_t pick = engine.map_cost(*job, a, node) <=
                                       engine.map_cost(*job, b, node)
                                   ? a
                                   : b;
      engine.assign_map(*job, pick, node);
      return true;
    }
    return false;
  }

  bool try_reduce(mapreduce::Engine& engine, NodeId node) {
    for (auto* job :
         mapreduce::jobs_for_reduces(engine, mapreduce::JobOrder::kFair)) {
      if (job->has_reduce_on(node)) continue;
      const auto unassigned = job->unassigned_reduces();
      if (unassigned.empty()) continue;
      // Two random reduce candidates, scored with the paper's Eq. 3
      // estimator through the public cost evaluator.
      const core::ReduceCostEvaluator eval(
          engine, *job, core::EstimatorMode::kProjected, {node});
      const std::size_t a = unassigned[rng_.index(unassigned.size())];
      const std::size_t b = unassigned[rng_.index(unassigned.size())];
      const std::size_t pick = eval.cost(0, a) <= eval.cost(0, b) ? a : b;
      engine.assign_reduce(*job, pick, node);
      return true;
    }
    return false;
  }

  Rng rng_;
};

}  // namespace

int main() {
  using namespace mrs;
  std::vector<workload::JobDescription> jobs = {
      workload::table2_catalog()[0],   // Wordcount_10GB
      workload::table2_catalog()[10],  // Terasort_10GB
      workload::table2_catalog()[20],  // Grep_10GB
  };

  // The driver runs built-in schedulers; for a custom one we assemble the
  // experiment pieces ourselves (same wiring run_experiment does).
  auto run_custom = [&jobs] {
    const Rng root(21);
    const auto topo = net::make_single_rack(60, units::Gbps(1));
    dfs::BlockStore store(topo.host_count());
    dfs::BlockPlacer placer(&topo, root.split("placement"));
    workload::WorkloadConfig wcfg;
    const auto specs = workload::make_batch(jobs, store, placer, wcfg);
    sim::Simulation simulation;
    cluster::Cluster clstr(&topo, {}, root.split("cluster"));
    sim::NetworkService network(&simulation, &topo);
    net::HopDistanceProvider distance(topo);
    mapreduce::Engine engine(&simulation, &clstr, &store, &network,
                             &distance, {});
    std::size_t i = 0;
    for (const auto& spec : specs) {
      engine.submit(spec, root.split("job" + std::to_string(i++)));
    }
    PowerOfTwoScheduler sched(root.split("scheduler"));
    engine.set_scheduler(&sched);
    engine.start();
    simulation.run(1e7);
    RunningStats jct;
    for (const auto& j : engine.job_records()) jct.add(j.completion_time());
    return jct.mean();
  };

  const double custom_jct = run_custom();
  const auto pna_result = driver::run_experiment(
      driver::paper_config(jobs, driver::SchedulerKind::kPna, 21));
  RunningStats pna_jct;
  for (const auto& j : pna_result.job_records) {
    pna_jct.add(j.completion_time());
  }

  std::printf("custom power-of-two scheduler: mean JCT %.1fs\n", custom_jct);
  std::printf("built-in probabilistic (PNA):  mean JCT %.1fs\n",
              pna_jct.mean());
  std::printf("\nsee examples/custom_scheduler.cpp for how to plug a new\n"
              "TaskScheduler into the engine.\n");
  return 0;
}
