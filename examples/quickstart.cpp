// Quickstart: simulate a small cluster running three jobs under the
// probabilistic network-aware scheduler and print per-job results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "mrs/driver/experiment.hpp"
#include "mrs/metrics/summary.hpp"

int main() {
  using namespace mrs;

  // Three jobs from the paper's Table II workload (one per application).
  std::vector<workload::JobDescription> jobs = {
      workload::table2_catalog()[0],   // Wordcount_10GB
      workload::table2_catalog()[10],  // Terasort_10GB
      workload::table2_catalog()[20],  // Grep_10GB
  };

  // The paper's standard setup: 60 single-rack nodes, 4 map + 2 reduce
  // slots each, replication factor 2, P_min = 0.4.
  driver::ExperimentConfig cfg =
      driver::paper_config(jobs, driver::SchedulerKind::kPna, /*seed=*/7);

  std::printf("running %zu jobs on %zu nodes under '%s'...\n",
              cfg.jobs.size(), cfg.nodes, to_string(cfg.scheduler));
  const driver::ExperimentResult result = driver::run_experiment(cfg);

  std::printf("\n%-18s %8s %8s %10s\n", "job", "maps", "reduces",
              "JCT (s)");
  for (const auto& j : result.job_records) {
    std::printf("%-18s %8zu %8zu %10.1f\n", j.name.c_str(), j.map_count,
                j.reduce_count, j.completion_time());
  }

  const auto locality = metrics::locality_summary(
      result.task_records, metrics::TaskFilter::kMapsOnly);
  std::printf(
      "\nmakespan %.1f s | %zu tasks | map locality: %.1f%% node-local, "
      "%.1f%% rack-local, %.1f%% remote\n",
      result.makespan, result.task_records.size(), locality.node_local_pct,
      locality.rack_local_pct, locality.remote_pct);
  std::printf("map slot utilization %.1f%%, reduce slot utilization %.1f%%\n",
              100.0 * result.utilization.map_utilization(),
              100.0 * result.utilization.reduce_utilization());
  return result.completed ? 0 : 1;
}
