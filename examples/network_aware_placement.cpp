// Walk through the paper's cost model on a live cluster (Sec. II-B):
//  1. build a multi-rack topology and show the hop distance matrix H,
//  2. add background cross-traffic and show the network-condition variant
//     (inverse transmission rates, Sec. II-B-3) diverging from hops,
//  3. run the NAS/SAN-motivated scenario — all data on a subset of nodes —
//     and show how the probabilistic scheduler's placements respond.
#include <cstdio>

#include "mrs/driver/experiment.hpp"
#include "mrs/metrics/summary.hpp"
#include "mrs/net/distance.hpp"
#include "mrs/net/link_condition.hpp"

int main() {
  using namespace mrs;

  // --- 1. topology and the hop matrix H ------------------------------
  net::TreeTopologyConfig tcfg;
  tcfg.racks = 2;
  tcfg.hosts_per_rack = 3;
  const net::Topology topo = net::make_multi_rack_tree(tcfg);
  std::printf("2 racks x 3 nodes; hop distance matrix H (Eq. 1):\n    ");
  for (std::size_t b = 0; b < topo.host_count(); ++b) {
    std::printf("  D%zu", b + 1);
  }
  std::printf("\n");
  for (std::size_t a = 0; a < topo.host_count(); ++a) {
    std::printf("  D%zu", a + 1);
    for (std::size_t b = 0; b < topo.host_count(); ++b) {
      std::printf("  %2zu", topo.hops(NodeId(a), NodeId(b)));
    }
    std::printf("\n");
  }

  // --- 2. network condition: inverse-rate distances ------------------
  net::BackgroundTrafficConfig bg;
  bg.mean_utilization = 0.35;
  bg.burst_utilization = 0.4;
  bg.burst_probability = 0.3;
  bg.uplinks_only = false;
  net::LinkConditionModel cond(&topo, bg, Rng(7));
  std::printf(
      "\nwith cross-traffic, h_ab becomes the inverse path rate "
      "(Sec. II-B-3):\n    ");
  for (std::size_t b = 0; b < topo.host_count(); ++b) {
    std::printf("    D%zu", b + 1);
  }
  std::printf("\n");
  for (std::size_t a = 0; a < topo.host_count(); ++a) {
    std::printf("  D%zu", a + 1);
    for (std::size_t b = 0; b < topo.host_count(); ++b) {
      std::printf(" %5.1f",
                  cond.weighted_path_distance(NodeId(a), NodeId(b)));
    }
    std::printf("\n");
  }
  std::printf("(an uncongested hop costs 1.0; congested paths look longer,\n"
              " so the scheduler routes tasks around them)\n");

  // --- 3. the NAS/SAN scenario ---------------------------------------
  std::printf(
      "\nNAS/SAN scenario: every replica lives on 25%% of the nodes;\n"
      "comparing fair vs probabilistic placement under cross-traffic...\n");
  std::vector<workload::JobDescription> jobs = {
      workload::table2_catalog()[20],  // Grep_10GB
      workload::table2_catalog()[0],   // Wordcount_10GB
  };
  std::vector<driver::ExperimentConfig> cfgs;
  for (auto kind :
       {driver::SchedulerKind::kFair, driver::SchedulerKind::kPna}) {
    auto cfg = driver::paper_config(jobs, kind, 11);
    cfg.workload.placement = dfs::PlacementPolicy::kSkewed;
    cfgs.push_back(cfg);
  }
  const auto results = driver::run_experiments(cfgs);
  for (const auto& r : results) {
    RunningStats jct;
    for (const auto& j : r.job_records) jct.add(j.completion_time());
    const auto loc = metrics::locality_summary(
        r.task_records, metrics::TaskFilter::kMapsOnly);
    std::printf(
        "  %-14s mean JCT %6.1fs | %4.1f%% node-local maps | "
        "%4.1f%% of maps moved data\n",
        r.scheduler_name.c_str(), jct.mean(), loc.node_local_pct,
        100.0 - loc.node_local_pct);
  }
  std::printf(
      "\nFair waits for slots on the few data-holding nodes; the\n"
      "probabilistic scheduler instead weighs that wait against the\n"
      "measured transfer cost and streams remote input when the path is\n"
      "cheap — trading locality for slot utilization, the balance the\n"
      "paper's P_min knob controls (see bench_pmin_sweep).\n");
  return 0;
}
