// Compare all four task schedulers (FIFO, Fair+delay, Coupling,
// Probabilistic Network-Aware) on one mixed workload — the comparison at
// the heart of the paper's evaluation, at an example-friendly scale.
//
//   ./build/examples/scheduler_comparison [seed]
#include <cstdio>
#include <cstdlib>

#include "mrs/driver/experiment.hpp"
#include "mrs/metrics/summary.hpp"

int main(int argc, char** argv) {
  using namespace mrs;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // One small job of each application from Table II.
  std::vector<workload::JobDescription> jobs = {
      workload::table2_catalog()[0],   // Wordcount_10GB
      workload::table2_catalog()[10],  // Terasort_10GB
      workload::table2_catalog()[20],  // Grep_10GB
      workload::table2_catalog()[1],   // Wordcount_20GB
  };

  std::vector<driver::ExperimentConfig> cfgs;
  for (auto kind :
       {driver::SchedulerKind::kFifo, driver::SchedulerKind::kFair,
        driver::SchedulerKind::kCoupling, driver::SchedulerKind::kPna}) {
    cfgs.push_back(driver::paper_config(jobs, kind, seed));
  }
  std::printf("running %zu jobs x %zu schedulers on 60 nodes "
              "(seed %llu)...\n\n",
              jobs.size(), cfgs.size(),
              static_cast<unsigned long long>(seed));
  const auto results = driver::run_experiments(cfgs);

  std::printf("%-14s %10s %10s %12s %12s %12s\n", "scheduler", "mean JCT",
              "makespan", "map local%", "reduce cost", "events");
  for (const auto& r : results) {
    RunningStats jct;
    for (const auto& j : r.job_records) jct.add(j.completion_time());
    const auto loc = metrics::locality_summary(
        r.task_records, metrics::TaskFilter::kMapsOnly);
    const double rcost = metrics::mean_placement_cost(
        r.task_records, metrics::TaskFilter::kReducesOnly);
    std::printf("%-14s %9.1fs %9.1fs %11.1f%% %12.3g %12zu\n",
                r.scheduler_name.c_str(), jct.mean(), r.makespan,
                loc.node_local_pct, rcost, r.events_processed);
  }

  std::printf("\nper-job completion times (seconds):\n%-18s", "job");
  for (const auto& r : results) std::printf(" %13s", r.scheduler_name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < results[0].job_records.size(); ++i) {
    std::printf("%-18s", results[0].job_records[i].name.c_str());
    for (const auto& r : results) {
      // Job order can differ per run; match by name.
      for (const auto& j : r.job_records) {
        if (j.name == results[0].job_records[i].name) {
          std::printf(" %12.1fs", j.completion_time());
          break;
        }
      }
    }
    std::printf("\n");
  }
  return 0;
}
